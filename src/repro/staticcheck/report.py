"""Findings, the check-code catalog, suppressions, and output rendering.

Every check emits :class:`Finding` objects carrying a stable code from
:data:`CHECK_CODES`.  A finding can be silenced at its source line with::

    risky_call()  # repro: allow[D1] -- one-line justification

The justification is mandatory: a suppression without one is itself a
finding (code ``X1``), so the tree cannot accumulate unexplained
exemptions.  A suppression written on a comment-only line covers the next
source line instead, for statements too long to share a line with it.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

CHECK_CODES: Dict[str, str] = {
    # D — determinism: the only sanctioned entropy source is an injected,
    # explicitly seeded random.Random.
    "D1": "call into the module-level random API (shared global stream)",
    "D2": "wall-clock / OS-entropy call (time.time, datetime.now, uuid4, "
          "os.urandom, secrets)",
    "D3": "unordered iteration over a set feeding an order-sensitive "
          "computation",
    "D4": "float equality in a decision predicate",
    "D5": "random.Random constructed unseeded (or from a parameter that "
          "defaults to None)",
    "D6": "numpy.random global-stream call, or a numpy Generator "
          "constructed unseeded",
    # P — parity: both engines and the invariant checker speak the same
    # event vocabulary, and every mutation operator is contract-tested.
    "P1": "trace event type not recorded by both execution engines",
    "P2": "trace event type not consumed by the invariant checker",
    "P3": "StepType member not handled by the step engine",
    "P4": "mutation operator without a hypothesis admissibility contract "
          "test",
    # R — registry: everything concrete is registered and exercised.
    "R1": "concrete adversary/strategy class missing from the adversary "
          "registry",
    "R2": "concrete protocol class missing from the protocol registry",
    "R3": "registry name without a scenario in the registry-completeness "
          "test",
    # S — serialization/perf contracts on the hot path.
    "S1": "hot-path class in the slots manifest lost __slots__",
    "S2": "unpicklable value (lambda / local def) reaches a TrialSpec",
    "S3": "json.dump/json.dumps in the results layer without "
          "allow_nan=False (would emit non-standard NaN/Infinity "
          "tokens)",
    # F — fault tolerance: the resilient executor may catch broadly, but
    # never swallow.
    "F1": "broad except on the execution path that neither re-raises nor "
          "records the failure",
    # T — telemetry isolation: observation must never perturb results.
    "T1": "simulation-layer module imports repro.telemetry",
    "T2": "telemetry code draws entropy (seeded_rng / random.Random)",
    # X — linter meta.
    "X1": "suppression comment without a justification",
}
"""Every check code the linter can emit, with a one-line description."""

CHECK_FAMILIES: Dict[str, str] = {
    "D": "determinism",
    "P": "parity",
    "R": "registry",
    "S": "serialization",
    "F": "fault tolerance",
    "T": "telemetry",
    "X": "linter meta",
}

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9, ]+)\]\s*"
    r"(?:(?:--|—|:)\s*(?P<why>\S.*))?$")


@dataclass(frozen=True)
class Finding:
    """One coded finding with a file:line anchor.

    Attributes:
        code: a key of :data:`CHECK_CODES`.
        path: path of the offending file, relative to the linted root.
        line: 1-based line number of the anchor.
        message: human-readable description of this occurrence.
    """

    code: str
    path: str
    line: int
    message: str

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.code)

    def to_jsonable(self) -> Dict[str, object]:
        return {"code": self.code, "path": self.path, "line": self.line,
                "message": self.message,
                "check": CHECK_CODES.get(self.code, "")}

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment.

    Attributes:
        line: the source line the suppression *covers* (comment-only lines
            cover the following line).
        codes: the check codes it silences.
        justified: whether a justification followed the bracket.
        comment_line: the line the comment itself sits on.
    """

    line: int
    codes: Tuple[str, ...]
    justified: bool
    comment_line: int


def parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Extract every suppression comment from a file's source lines."""
    suppressions: List[Suppression] = []
    for number, raw in enumerate(lines, start=1):
        match = _SUPPRESSION_RE.search(raw)
        if not match:
            continue
        codes = tuple(code.strip().upper()
                      for code in match.group(1).split(",") if code.strip())
        covers = number + 1 if raw.lstrip().startswith("#") else number
        suppressions.append(Suppression(
            line=covers, codes=codes,
            justified=match.group("why") is not None,
            comment_line=number))
    return suppressions


def apply_suppressions(findings: Iterable[Finding],
                       suppressions_by_path: Dict[str, List[Suppression]],
                       ) -> List[Finding]:
    """Drop suppressed findings; flag unjustified suppressions as ``X1``.

    A suppression silences findings whose code (or code family letter)
    it names, on the line it covers.  Unjustified suppressions yield an
    ``X1`` finding whether or not they matched anything.
    """
    kept: List[Finding] = []
    for finding in findings:
        suppressed = False
        for suppression in suppressions_by_path.get(finding.path, ()):
            if suppression.line != finding.line:
                continue
            if finding.code in suppression.codes or \
                    finding.code[0] in suppression.codes:
                suppressed = True
                break
        if not suppressed:
            kept.append(finding)
    for path, suppressions in sorted(suppressions_by_path.items()):
        for suppression in suppressions:
            if not suppression.justified:
                kept.append(Finding(
                    code="X1", path=path, line=suppression.comment_line,
                    message="suppression "
                            f"allow[{','.join(suppression.codes)}] carries "
                            "no justification (append `-- <reason>`)"))
    return sorted(kept, key=Finding.sort_key)


def expand_code_selection(raw: Optional[str]) -> Optional[Set[str]]:
    """Expand ``--select``/``--ignore`` input into a set of full codes.

    Accepts comma-separated codes (``D1,P3``) and family letters (``D``).

    Raises:
        ValueError: on a token naming no known code or family.
    """
    if raw is None:
        return None
    selected: Set[str] = set()
    for token in raw.split(","):
        token = token.strip().upper()
        if not token:
            continue
        if token in CHECK_CODES:
            selected.add(token)
        elif token in CHECK_FAMILIES:
            selected.update(code for code in CHECK_CODES
                            if code.startswith(token))
        else:
            known = ", ".join(sorted(CHECK_CODES) + sorted(CHECK_FAMILIES))
            raise ValueError(
                f"unknown check code {token!r}; known codes: {known}")
    return selected


def filter_findings(findings: Sequence[Finding],
                    select: Optional[Set[str]] = None,
                    ignore: Optional[Set[str]] = None) -> List[Finding]:
    """Apply ``--select`` (keep only) then ``--ignore`` (drop)."""
    kept = [finding for finding in findings
            if (select is None or finding.code in select)
            and (ignore is None or finding.code not in ignore)]
    return sorted(kept, key=Finding.sort_key)


@dataclass
class LintResult:
    """The outcome of one lint run.

    Attributes:
        findings: surviving findings, sorted by (path, line, code).
        files_scanned: how many Python files were parsed.
    """

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def codes(self) -> Set[str]:
        """The distinct finding codes present."""
        return {finding.code for finding in self.findings}

    def render_text(self) -> str:
        if not self.findings:
            return (f"repro lint: {self.files_scanned} files scanned, "
                    f"no findings")
        lines = [str(finding) for finding in self.findings]
        lines.append(f"repro lint: {len(self.findings)} finding(s) in "
                     f"{self.files_scanned} scanned files")
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "files_scanned": self.files_scanned,
            "finding_count": len(self.findings),
            "findings": [finding.to_jsonable()
                         for finding in self.findings],
        }, indent=2, sort_keys=True) + "\n"


__all__ = [
    "CHECK_CODES",
    "CHECK_FAMILIES",
    "Finding",
    "Suppression",
    "LintResult",
    "parse_suppressions",
    "apply_suppressions",
    "expand_code_selection",
    "filter_findings",
]
