"""F — fault-tolerance checks.

The resilient execution layer (``runner/``, ``faults/``) is allowed to
catch broad exceptions — converting a failing trial into a retry, a
quarantine pass, or a recorded :class:`~repro.runner.health.TrialFailure`
is its whole job.  What it is *not* allowed to do is swallow one: a bare
or broad ``except`` whose handler neither re-raises nor visibly feeds the
recovery machinery turns a real fault into silent data loss, the exact
failure mode the supervisor exists to prevent.

* **F1** — a bare ``except:`` / ``except Exception`` / ``except
  BaseException`` in an execution-path file whose handler neither
  re-raises nor mentions the recovery vocabulary (``record``, ``health``,
  ``failure``, ``quarantine``, ``recover``, ``retry``).  Narrow handlers
  (``except ValueError``) are out of scope — catching a specific
  exception is a statement of intent the broad forms lack.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.staticcheck.index import SymbolIndex
from repro.staticcheck.report import Finding
from repro.staticcheck.walker import ProjectFiles, SourceFile

F_SCOPE_DIRS = ("runner", "faults")
"""Package subdirectories the fault-tolerance (F) checks apply to."""

_BROAD_NAMES = frozenset({"Exception", "BaseException"})

_RECOVERY_TOKENS = ("record", "health", "failure", "quarantine", "recover",
                    "retry")
"""Identifier fragments that mark a handler as feeding the recovery
machinery (``self.health.retries += 1``, ``_recover_chunk(...)``,
``TrialFailure(...)`` — matched case-insensitively as substrings)."""


def _in_fault_scope(source: SourceFile) -> bool:
    first = source.relpath.split("/", 1)[0]
    return first in F_SCOPE_DIRS


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Whether the handler catches everything (bare / Exception-wide)."""
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    for node in types:
        name = node.id if isinstance(node, ast.Name) else (
            node.attr if isinstance(node, ast.Attribute) else None)
        if name in _BROAD_NAMES:
            return True
    return False


def _identifiers(nodes: List[ast.stmt]) -> Iterator[str]:
    for statement in nodes:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name):
                yield node.id
            elif isinstance(node, ast.Attribute):
                yield node.attr


def _handler_recovers(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or feeds the recovery machinery."""
    for statement in handler.body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Raise):
                return True
    for identifier in _identifiers(handler.body):
        lowered = identifier.lower()
        if any(token in lowered for token in _RECOVERY_TOKENS):
            return True
    return False


def check_faults(project: ProjectFiles,
                 index: SymbolIndex) -> List[Finding]:
    """Run the F checks over every execution-path file."""
    findings: List[Finding] = []
    for relpath in sorted(project.files):
        source = project.files[relpath]
        if not _in_fault_scope(source):
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _handler_recovers(node):
                continue
            findings.append(Finding(
                code="F1", path=relpath, line=node.lineno,
                message="broad except on the execution path neither "
                        "re-raises nor records the failure (retry, "
                        "quarantine, or record a TrialFailure/health "
                        "entry — never swallow)"))
    return findings


__all__ = ["F_SCOPE_DIRS", "check_faults"]
