"""The vectorized window engine: many trials of one cell in one process.

:class:`BatchedWindowEngine` executes a batch of same-shaped
:class:`~repro.runner.spec.TrialSpec` objects (one protocol, one adversary
class, one ``(n, t)``) with every piece of per-processor state laid out as
numpy arrays over ``trials x processors``.  It is a *re-implementation* of
the per-trial pipeline — :class:`~repro.simulation.windows.WindowEngine`,
:class:`~repro.simulation.network.Network`,
:class:`~repro.simulation.processor.Processor` and the protocol objects —
under one hard contract: **bit identity**.  Every
:class:`~repro.simulation.trace.ExecutionResult` field must equal what
:func:`~repro.runner.spec.execute_trial` produces for the same spec, which
the differential harness in :mod:`repro.verification.batched_diff` and the
engine tests enforce continuously.

Bit identity dictates the design:

* **Randomness** comes from real ``random.Random`` replicas, derived
  exactly as ``ProtocolFactory.build`` derives them (one master stream per
  trial, one 64-bit spawn per processor in pid order).  Each stream feeds
  nothing but its processor's coin flips, drawn on demand with one
  ``getrandbits(1)`` call per flip — exactly how the per-trial protocols
  advance the same streams.  Split-vote adversaries likewise hold
  per-trial ``seeded_rng`` replicas and call ``Random.sample`` on the same
  pid-ordered lists the oracle samples from.
* **Channels** are fixed-depth LIFO rings per directed processor pair.
  The per-trial network keeps unbounded per-channel deques but acceptable
  windows only ever *pop the newest* message per channel, so a depth-
  ``CHANNEL_DEPTH`` ring with absolute push positions is exact as long as
  no pop reaches below the ring's high-water mark; a pop that would read
  an overwritten slot **quarantines** the trial (see below).
* **Vote bookkeeping** uses one ``uint64`` sender bitmask per (trial,
  processor, round-slot, [phase]): insertion, duplicate-sender overwrite
  and tally counts (``np.bitwise_count``) are all O(1) array ops.  Round
  slots form a ring of ``RING_SLOTS`` future rounds; a message further
  ahead than the ring covers also quarantines its trial.

**Quarantine** is the batch's escape hatch: a trial whose execution
leaves the vectorizable envelope (deep channel backlog, far-future
round, crash budget overflow) is dropped from the batch *without a
result* and reported back to :class:`~repro.batched.runner.BatchedRunner`,
which re-runs it through the per-trial oracle.  Quarantine therefore
affects speed, never values.

The engine stops per trial exactly like ``WindowEngine.run``: the stop
predicate (``stop_when``) is evaluated *before* each window, and a trial
also stops once ``window_index`` reaches its ``max_windows``.  When the
active fraction of the batch drops below half (common under the
exponential window spreads of the E2 workload), the batch *compacts*,
gathering all live state down to the surviving trials.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.batched.support import effective_thresholds, replay_windows
from repro.determinism import seeded_rng
from repro.runner.spec import TrialSpec
from repro.simulation.trace import ExecutionResult

RING_SLOTS = 8
"""Future rounds buffered per processor before a trial quarantines."""

CHANNEL_DEPTH = 8
"""Messages retained per directed channel before old entries may evict."""

_REPORT = 0
_PROPOSE = 1

# One channel message is packed into a single int64 —
# [round:24][chain:24][value+1:2][tag:1] — so a push is one scatter and a
# pop one gather instead of three of each.  support.py caps max_windows
# far below the 24-bit field widths.
_ROUND_SHIFT = 27
_CHAIN_SHIFT = 3
_CHAIN_MASK = 0xFFFFFF
_VALUE_SHIFT = 1


def _popcount(mask: np.ndarray) -> np.ndarray:
    return np.bitwise_count(mask).astype(np.int64)


class BatchedWindowEngine:
    """Vectorized execution of one batch of same-signature trials.

    Args:
        specs: trial specs sharing one
            :func:`~repro.batched.support.batch_signature`; every spec
            must have passed
            :func:`~repro.batched.support.unsupported_reason`.
        phase_timers: optional dict accumulating seconds per execution
            phase (``deliver`` / ``tally`` / ``decide``) — the batched
            half of a ``--profile`` run's phase split (see
            :meth:`repro.telemetry.profiler.ProfileSession.phase_dict`).
            ``perf_counter`` intervals only; never read by the engine,
            so results stay bit-identical with timers on or off.

    Use :meth:`run`; it returns ``(results, quarantined)`` where
    ``results`` holds one :class:`ExecutionResult` per input spec (``None``
    at quarantined positions) and ``quarantined`` lists the indices that
    need the per-trial oracle.
    """

    _COMPACT = ("orig", "active", "window", "max_windows", "inputs_arr",
                "crashed", "pending", "output", "max_chain",
                "deciding_chain", "first_decision", "sent", "delivered",
                "resets_total", "crash_total", "coin_total", "ch_pack",
                "ch_pos")

    def __init__(self, specs: Sequence[TrialSpec],
                 phase_timers: Optional[Dict[str, float]] = None) -> None:
        self.specs: List[TrialSpec] = list(specs)
        self.phase_timers = phase_timers
        if not self.specs:
            raise ValueError("empty batch")
        first = self.specs[0]
        self.n = first.n
        self.t = first.t
        self.protocol_name = first.protocol
        self.stop_first = first.stop_when == "first"
        self.size = len(self.specs)
        trials, n = self.size, self.n

        self.orig = np.arange(trials, dtype=np.int64)
        self.active = np.ones(trials, dtype=bool)
        self.window = np.zeros(trials, dtype=np.int64)
        self.max_windows = np.array([spec.max_windows for spec in self.specs],
                                    dtype=np.int64)
        self.inputs_arr = np.array([spec.inputs for spec in self.specs],
                                   dtype=np.int8)
        self.first_decision = np.full(trials, -1, dtype=np.int64)
        self.sent = np.zeros(trials, dtype=np.int64)
        self.delivered = np.zeros(trials, dtype=np.int64)
        self.resets_total = np.zeros(trials, dtype=np.int64)
        self.crash_total = np.zeros(trials, dtype=np.int64)
        self.coin_total = np.zeros(trials, dtype=np.int64)

        self.crashed = np.zeros((trials, n), dtype=bool)
        self.pending = np.ones((trials, n), dtype=bool)
        self.output = np.full((trials, n), -1, dtype=np.int8)
        self.max_chain = np.zeros((trials, n), dtype=np.int32)
        self.deciding_chain = np.full((trials, n), -1, dtype=np.int32)

        self.ch_pack = np.zeros((trials, n, n, CHANNEL_DEPTH),
                                dtype=np.int64)
        # Per-channel cursor state, one int64 per (trial, receiver,
        # sender): [high-water:32][top:32].  One gather/scatter moves both.
        self.ch_pos = np.zeros((trials, n, n), dtype=np.int64)
        self.has_tag = first.protocol == "ben-or"

        # Per-(trial, processor) RNG replicas, derived exactly as
        # ProtocolFactory.build derives them.  Each stream feeds nothing
        # but that processor's coin flips, so drawing on demand keeps it
        # bit-identical to the per-trial protocol object's stream.
        self.rngs: List[List[random.Random]] = []
        for spec in self.specs:
            master = seeded_rng(spec.seed)
            self.rngs.append([random.Random(master.getrandbits(64))
                              for _ in range(n)])

        self.results: List[Optional[ExecutionResult]] = [None] * trials
        self.quarantined: List[int] = []

        if first.protocol == "reset-tolerant":
            self.kernel: Any = _ResetTolerantKernel(
                self, effective_thresholds(first))
        else:
            self.kernel = _BenOrKernel(self)
        self.fast_capable = first.protocol == "reset-tolerant"

        adversary = first.adversary
        if adversary == "benign":
            self.driver: Any = _BenignDriver()
        elif adversary == "silencing":
            self.driver = _SilencingDriver(self)
        elif adversary == "replay-schedule":
            self.driver = _ReplayDriver(self)
        else:
            self.driver = _SplitVoteDriver(
                self, adaptive=(adversary == "adaptive-resetting"))

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------
    @contextmanager
    def _phase(self, name: str) -> Iterator[None]:
        """Accumulate the body's ``perf_counter`` interval under ``name``."""
        timers = self.phase_timers
        if timers is None:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            timers[name] = timers.get(name, 0.0) \
                + (time.perf_counter() - start)

    def run(self) -> Tuple[List[Optional[ExecutionResult]], List[int]]:
        """Execute the batch; returns ``(results, quarantined_indices)``."""
        while True:
            with self._phase("decide"):
                self._finish_ready()
            remaining = int(self.active.sum())
            if remaining == 0:
                break
            if remaining * 2 <= self.active.shape[0]:
                self._compact()
            senders, deliver_last, resets, crashes = \
                self.driver.next_window(self)
            self._run_window(senders, deliver_last, resets, crashes)
        return self.results, self.quarantined

    def _finish_ready(self) -> None:
        """Build results for trials whose stop predicate now holds.

        Mirrors ``WindowEngine.run``: the stop check precedes each window,
        and the window cap ends a trial regardless of decisions.
        """
        decided = self.output >= 0
        if self.stop_first:
            stopped = decided.any(axis=1)
        else:
            # "all": every live processor decided (vacuous when all crashed).
            stopped = (decided | self.crashed).all(axis=1)
        done = self.active & (stopped | (self.window >= self.max_windows))
        if not done.any():
            return
        for index in np.flatnonzero(done):
            i = int(index)
            self.results[int(self.orig[i])] = self._build_result(i)
        self.active &= ~done

    def _build_result(self, i: int) -> ExecutionResult:
        spec = self.specs[i]
        outputs = tuple(None if bit < 0 else int(bit)
                        for bit in self.output[i].tolist())
        decided_values = {bit for bit in outputs if bit is not None}
        chains = self.deciding_chain[i]
        deciding = chains[chains >= 0]
        first_decision = int(self.first_decision[i])
        return ExecutionResult(
            n=self.n,
            t=self.t,
            inputs=tuple(spec.inputs),
            outputs=outputs,
            crashed=tuple(int(pid) for pid
                          in np.flatnonzero(self.crashed[i]).tolist()),
            windows_elapsed=int(self.window[i]),
            first_decision_window=(None if first_decision < 0
                                   else first_decision),
            message_chain_length=(int(deciding.min()) if deciding.size
                                  else None),
            messages_sent=int(self.sent[i]),
            messages_delivered=int(self.delivered[i]),
            total_resets=int(self.resets_total[i]),
            total_coin_flips=int(self.coin_total[i]),
            agreement_violated=len(decided_values) > 1,
            validity_violated=(not decided_values <= set(spec.inputs)
                               if decided_values else False),
        )

    def _quarantine(self, trial_mask: np.ndarray) -> None:
        """Drop trials from the batch; the runner re-runs them per trial."""
        fresh = trial_mask & self.active
        if not fresh.any():
            return
        for index in np.flatnonzero(fresh):
            self.quarantined.append(int(self.orig[int(index)]))
        self.active &= ~fresh

    def _quarantine_trials(self, trial_indices: np.ndarray) -> None:
        """Quarantine by (possibly repeated) trial index."""
        mask = np.zeros(self.active.shape, dtype=bool)
        mask[trial_indices] = True
        self._quarantine(mask)

    def _compact(self) -> None:
        """Gather all state down to the still-active trials."""
        keep = np.flatnonzero(self.active)
        if keep.size == self.active.shape[0]:
            return
        for name in self._COMPACT:
            setattr(self, name, getattr(self, name)[keep])
        keep_list = [int(i) for i in keep]
        self.specs = [self.specs[i] for i in keep_list]
        self.rngs = [self.rngs[i] for i in keep_list]
        self.kernel.gather(keep)
        self.driver.gather(keep)

    # ------------------------------------------------------------------
    # One acceptable window (mirrors WindowEngine.run_window phase order).
    # ------------------------------------------------------------------
    def _run_window(self, senders: Tuple[str, np.ndarray],
                    deliver_last: Optional[np.ndarray],
                    resets: Optional[np.ndarray],
                    crashes: Optional[np.ndarray]) -> None:
        if resets is None and crashes is None and self.fast_capable \
                and self._fast_ready():
            self._fast_rt_window(senders, deliver_last)
            return
        # The general path interleaves sending/delivery/reset work too
        # tightly to split; it all books under "deliver".
        with self._phase("deliver"):
            self._slow_window(senders, deliver_last, resets, crashes)

    def _slow_window(self, senders: Tuple[str, np.ndarray],
                     deliver_last: Optional[np.ndarray],
                     resets: Optional[np.ndarray],
                     crashes: Optional[np.ndarray]) -> None:
        act = self.active.copy()
        act_procs = np.broadcast_to(act[:, None], self.crashed.shape)

        # Crashes land before any step of the window (replay only).
        if crashes is not None and crashes.any():
            fresh = crashes & ~self.crashed & act_procs
            self.crashed |= fresh
            self.crash_total += fresh.sum(axis=1, dtype=np.int64)
            over = act & (self.crash_total > self.t)
            if over.any():  # statically excluded; kept as a hard backstop
                self._quarantine(over)
                act = act & ~over
                act_procs = np.broadcast_to(act[:, None], self.crashed.shape)

        # Phase 1: every live processor takes its sending step.  The
        # pending flag is consumed for all of them; only those whose
        # protocol composes messages actually broadcast.
        live = ~self.crashed & act_procs
        sending = live & self.pending & self.kernel.sends_allowed()
        self.pending &= ~live
        if sending.any():
            self.sent += sending.sum(axis=1, dtype=np.int64) * self.n
            rounds, values, tags = self.kernel.compose()
            self._push(sending, rounds, values, tags,
                       (self.max_chain + 1).astype(np.int32))

        # Phase 2: receiving steps.  Receivers are mutually independent
        # within a window (all sends precede all deliveries), so a
        # sender-major sweep in ascending pid order — non-deliver-last
        # senders first — delivers in exactly the per-receiver order the
        # oracle uses (sorted senders, deliver_last stably last).
        dl_any = deliver_last is not None and bool(deliver_last.any())
        receiving = ~self.crashed & act_procs
        passes = (False, True) if dl_any else (False,)
        for last_pass in passes:
            for sender in range(self.n):
                mode, mask = senders
                if mode == "uniform":
                    base = receiving & mask[:, sender, None]
                else:
                    base = receiving & mask[:, :, sender]
                if dl_any:
                    gate = deliver_last[:, sender]
                    base = base & (gate if last_pass else ~gate)[:, None]
                if base.any():
                    self._deliver(sender, base)

        # Phase 3: resets, in any order (each touches only its own state).
        if resets is not None:
            to_reset = resets & ~self.crashed & act_procs
            if to_reset.any():
                self.resets_total += to_reset.sum(axis=1, dtype=np.int64)
                self.pending |= to_reset
                self.kernel.reset(to_reset)

        self.window += act
        newly = act & (self.first_decision < 0) & (self.output >= 0).any(axis=1)
        if newly.any():
            self.first_decision[newly] = self.window[newly]

    # ------------------------------------------------------------------
    # Synchronized fast path (reset-tolerant kernel only).
    #
    # In the steady state of the benign, silencing and split-vote
    # workloads every live processor sits at the same round with an empty
    # vote ring and a pending receive flag.  A whole window then has a
    # closed form: every delivery is a current-round vote, a receiver
    # fires exactly when its T1-th vote (in delivery order) arrives, the
    # fired tally is precisely the first T1 votes — later ones land with
    # ``offset < 0`` and are skipped — and the advanced slot 0 is empty,
    # so no cascade follows.  That removes the sequential per-sender
    # sweep: one vectorized pass over (trial, receiver, sender) replaces
    # ``2n`` sparse deliver/insert calls, bit-identically.
    # ------------------------------------------------------------------
    def _fast_ready(self) -> bool:
        """Whether every active trial is in the synchronized state."""
        act_procs = self.active[:, None]
        kernel = self.kernel
        if (self.crashed & act_procs).any():
            return False
        if (kernel.resync & act_procs).any():
            return False
        if (~self.pending & act_procs).any():
            return False
        if ((kernel.est < 0) & act_procs).any():
            return False
        if ((kernel.round != kernel.round[:, :1]) & act_procs).any():
            return False
        return not (kernel.vmask.any(axis=2) & act_procs).any()

    def _fast_rt_window(self, senders: Tuple[str, np.ndarray],
                        deliver_last: Optional[np.ndarray]) -> None:
        timers = self.phase_timers
        mark = time.perf_counter() if timers is not None else 0.0
        kernel = self.kernel
        n = self.n
        t1, t2, t3 = kernel.t1, kernel.t2, kernel.t3
        act = self.active
        act_procs = act[:, None]

        # Phase 1: every live processor broadcasts (round, est, chain+1).
        self.pending &= ~act_procs
        self.sent += act * (n * n)
        est_sent = kernel.est
        chain_sent = (self.max_chain + 1).astype(np.int32)
        packed = (kernel.round.astype(np.int64) << _ROUND_SHIFT) \
            | (chain_sent.astype(np.int64) << _CHAIN_SHIFT) \
            | ((est_sent.astype(np.int64) + 1) << _VALUE_SHIFT)
        send3 = act_procs[:, None, :]
        pos = self.ch_pos
        top = pos & 0xFFFFFFFF
        slot = (top % CHANNEL_DEPTH)[..., None]
        current = np.take_along_axis(self.ch_pack, slot, axis=3)
        np.put_along_axis(
            self.ch_pack, slot,
            np.where(send3[..., None],
                     np.broadcast_to(packed[:, None, :, None], current.shape),
                     current),
            axis=3)
        new_top = top + 1
        np.copyto(self.ch_pos,
                  (np.maximum(pos >> 32, new_top) << 32) | new_top,
                  where=send3)

        # Phase 2: pop this window's vote on every permitted channel.
        mode, mask = senders
        act3 = act[:, None, None]
        if mode == "uniform":
            deliv = np.empty((act.shape[0], n, n), dtype=bool)
            np.copyto(deliv, act3 & mask[:, None, :])
        else:
            deliv = act3 & mask
        self.ch_pos -= deliv
        got = deliv.sum(axis=2)
        self.delivered += got.sum(axis=1)
        self.pending |= got > 0

        # Delivery order: non-deliver-last senders ascending, then the
        # deliver-last ones ascending (the oracle's per-receiver order).
        if deliver_last is not None:
            perm = np.argsort(deliver_last, axis=1, kind="stable")
            deliv_o = np.take_along_axis(deliv, perm[:, None, :], axis=2)
            val_o = np.take_along_axis(est_sent, perm, axis=1)[:, None, :]
            chain_o = np.take_along_axis(chain_sent, perm,
                                         axis=1)[:, None, :]
        else:
            deliv_o = deliv
            val_o = est_sent[:, None, :]
            chain_o = chain_sent[:, None, :]
        if timers is not None:
            now = time.perf_counter()
            timers["deliver"] = timers.get("deliver", 0.0) + (now - mark)
            mark = now

        # The first T1 votes in delivery order are the fired tally.
        selected = deliv_o & (np.cumsum(deliv_o, axis=2) <= t1)
        count = np.minimum(got, t1)
        ones = (selected & (val_o == 1)).sum(axis=2)
        zeros = count - ones

        # Chain bookkeeping: the deciding chain sees only the first T1
        # deliveries (recorded at fire time); max_chain sees them all.
        pre_chain = self.max_chain
        sel_chain = np.where(selected, chain_o, 0).max(axis=2)
        all_chain = np.where(deliv_o, chain_o, 0).max(axis=2)
        self.max_chain = np.maximum(pre_chain, all_chain)
        decide_chain = np.maximum(pre_chain, sel_chain)
        if timers is not None:
            now = time.perf_counter()
            timers["tally"] = timers.get("tally", 0.0) + (now - mark)
            mark = now

        # Fire: majority/decide/estimate, exactly _finish_round.
        fire = act_procs & (got >= t1)
        majority_zero = zeros >= ones
        majority_value = np.where(majority_zero, 0, 1).astype(np.int8)
        majority_count = np.where(majority_zero, zeros, ones)
        deciding = fire & (majority_count >= t2) & (self.output < 0)
        if deciding.any():
            self.output = np.where(deciding, majority_value, self.output)
            self.deciding_chain = np.where(deciding, decide_chain,
                                           self.deciding_chain)
        new_est = np.where(fire, majority_value, est_sent)
        flipping = fire & (majority_count < t3)
        if flipping.any():
            ft, fp = np.nonzero(flipping)
            new_est[ft, fp] = self._draw_coins(ft, fp)
        # Sub-T1 tallies buffer in slot 0 (ring was empty, so writing
        # zeros elsewhere is a no-op); fired rings stay empty.
        tally = act_procs & ~fire & (got > 0)
        if tally.any():
            weights = np.uint64(1) << np.arange(n, dtype=np.uint64)
            vm = (deliv * weights).sum(axis=2, dtype=np.uint64)
            vo = ((deliv & (est_sent == 1)[:, None, :])
                  * weights).sum(axis=2, dtype=np.uint64)
            sl0 = kernel.slot_base[..., None]
            np.put_along_axis(kernel.vmask, sl0,
                              np.where(tally, vm, 0)[..., None], axis=2)
            np.put_along_axis(kernel.vones, sl0,
                              np.where(tally, vo, 0)[..., None], axis=2)
        kernel.est = new_est
        kernel.round = kernel.round + fire
        kernel.base_round = kernel.base_round + fire
        kernel.slot_base = ((kernel.slot_base + fire)
                            % RING_SLOTS).astype(np.int32)

        self.window += act
        newly = act & (self.first_decision < 0) \
            & (self.output >= 0).any(axis=1)
        if newly.any():
            self.first_decision[newly] = self.window[newly]
        if timers is not None:
            timers["decide"] = timers.get("decide", 0.0) \
                + (time.perf_counter() - mark)

    def _push(self, sending: np.ndarray, rounds: np.ndarray,
              values: np.ndarray, tags: Optional[np.ndarray],
              chains: np.ndarray) -> None:
        """Broadcast each sender's message onto all n channel rings."""
        tt, ss = np.nonzero(sending)
        if not tt.size:
            return
        tcol = tt[:, None]
        scol = ss[:, None]
        rrow = np.arange(self.n)[None, :]
        pos = self.ch_pos[tcol, rrow, scol]
        top = pos & 0xFFFFFFFF
        slot = top % CHANNEL_DEPTH
        packed = (rounds[tt, ss].astype(np.int64) << _ROUND_SHIFT) \
            | (chains[tt, ss].astype(np.int64) << _CHAIN_SHIFT) \
            | ((values[tt, ss].astype(np.int64) + 1) << _VALUE_SHIFT)
        if tags is not None:
            packed |= tags[tt, ss].astype(np.int64)
        self.ch_pack[tcol, rrow, scol, slot] = packed[:, None]
        new_top = top + 1
        self.ch_pos[tcol, rrow, scol] = \
            np.maximum(pos >> 32, new_top) << 32 | new_top

    def _deliver(self, sender: int, receivers: np.ndarray) -> None:
        """Pop the newest channel message from ``sender`` per receiver."""
        pos = self.ch_pos[:, :, sender]
        has = receivers & ((pos & 0xFFFFFFFF) > 0)
        if not has.any():
            return
        tt, rr = np.nonzero(has)
        pos = pos[tt, rr]
        position = (pos & 0xFFFFFFFF) - 1
        evicted = position < (pos >> 32) - CHANNEL_DEPTH
        if evicted.any():
            # The ring no longer holds this message; the per-trial oracle
            # (with its unbounded deques) must run this trial instead.
            self._quarantine_trials(tt[evicted])
        slot = position % CHANNEL_DEPTH
        packed = self.ch_pack[tt, rr, sender, slot]
        msg_round = (packed >> _ROUND_SHIFT).astype(np.int32)
        msg_chain = ((packed >> _CHAIN_SHIFT) & _CHAIN_MASK) \
            .astype(np.int32)
        msg_value = (((packed >> _VALUE_SHIFT) & 3) - 1).astype(np.int8)
        msg_tag = (packed & 1).astype(np.int8) if self.has_tag else None
        self.ch_pos[tt, rr, sender] = (pos & ~np.int64(0xFFFFFFFF)) | position
        self.delivered += has.sum(axis=1, dtype=np.int64)
        self.pending |= has
        chain_max = self.max_chain[tt, rr]
        growing = msg_chain > chain_max
        if growing.any():
            self.max_chain[tt[growing], rr[growing]] = msg_chain[growing]
        self.kernel.insert(sender, tt, rr, msg_round, msg_value, msg_tag)

    def _draw_coins(self, tt: np.ndarray, pp: np.ndarray) -> np.ndarray:
        """One coin flip per (trial, processor) pair, drawn on demand.

        Each per-(trial, processor) stream feeds nothing but that
        processor's coin flips, so a direct ``getrandbits(1)`` here
        advances it exactly as the per-trial protocol object would.
        """
        rngs = self.rngs
        flips = np.array([rngs[trial][pid].getrandbits(1)
                          for trial, pid in zip(tt.tolist(), pp.tolist())],
                         dtype=np.int8)
        np.add.at(self.coin_total, tt, 1)
        return flips


# ----------------------------------------------------------------------
# Protocol kernels.
# ----------------------------------------------------------------------
class _ResetTolerantKernel:
    """Vectorized ``ResetTolerantAgreement`` state machine.

    Vote tallies live in a ring of ``RING_SLOTS`` round slots per
    processor; slot ``(slot_base + (r - base_round)) % RING_SLOTS`` holds
    round ``r``'s sender bitmask.  For a synchronised processor
    ``base_round == round`` and slot 0 is the current round.  A *resyncing*
    processor (post-reset) anchors the ring two rounds below its first
    buffered vote and, on adoption (``t1`` votes for one round), rebases
    the ring to the adopted round — buffered future votes survive, votes
    for dropped lower rounds are discarded exactly as the oracle never
    revisits them.
    """

    _FIELDS = ("round", "est", "resync", "base_set", "base_round",
               "slot_base", "vmask", "vones")

    def __init__(self, eng: BatchedWindowEngine, thresholds) -> None:
        self.eng = eng
        self.t1 = thresholds.t1
        self.t2 = thresholds.t2
        self.t3 = thresholds.t3
        trials, n = eng.size, eng.n
        self.round = np.ones((trials, n), dtype=np.int32)
        self.est = eng.inputs_arr.copy()
        self.resync = np.zeros((trials, n), dtype=bool)
        self.base_set = np.zeros((trials, n), dtype=bool)
        self.base_round = np.ones((trials, n), dtype=np.int32)
        self.slot_base = np.zeros((trials, n), dtype=np.int32)
        self.vmask = np.zeros((trials, n, RING_SLOTS), dtype=np.uint64)
        self.vones = np.zeros((trials, n, RING_SLOTS), dtype=np.uint64)

    def gather(self, keep: np.ndarray) -> None:
        for name in self._FIELDS:
            setattr(self, name, getattr(self, name)[keep])

    # -- sending ---------------------------------------------------------
    def sends_allowed(self) -> np.ndarray:
        return ~self.resync & (self.round >= 0) & (self.est >= 0)

    def compose(self) -> Tuple[np.ndarray, np.ndarray, None]:
        return self.round, self.est, None

    # -- adversary views -------------------------------------------------
    def adversary_estimate(self) -> np.ndarray:
        return self.est

    def will_send(self) -> np.ndarray:
        return ~self.resync & (self.round >= 0)

    def waiting(self) -> int:
        return self.t1

    def default_block_threshold(self) -> np.ndarray:
        return np.full(self.round.shape[0], self.t3, dtype=np.int64)

    # -- receiving -------------------------------------------------------
    def insert(self, sender: int, tt: np.ndarray, pp: np.ndarray,
               msg_round: np.ndarray, msg_value: np.ndarray,
               msg_tag: Optional[np.ndarray]) -> None:
        bit = np.uint64(1) << np.uint64(sender)
        current = self.round[tt, pp]
        resync = self.resync[tt, pp]
        any_resync = bool(resync.any())
        if any_resync:
            first = resync & ~self.base_set[tt, pp]
            base = self.base_round[tt, pp]
            if first.any():
                base = np.where(first, msg_round - 2, base)
                self.base_round[tt[first], pp[first]] = base[first]
                self.base_set[tt[first], pp[first]] = True
            offset = np.where(resync, msg_round - base, msg_round - current)
            # Normal-mode past rounds are a silent skip; a resyncing
            # processor buffers *every* round, so one below the anchor
            # (or beyond the ring, in either mode) leaves the envelope.
            bad = (offset >= RING_SLOTS) | (resync & (offset < 0))
        else:
            offset = msg_round - current
            bad = offset >= RING_SLOTS
        if bad.any():
            self.eng._quarantine_trials(tt[bad])
        keep = (offset >= 0) & (offset < RING_SLOTS)
        if keep.all():
            value = msg_value
        else:
            if not keep.any():
                return
            tt, pp = tt[keep], pp[keep]
            offset = offset[keep]
            value = msg_value[keep]
            msg_round = msg_round[keep]
            resync = resync[keep]
        sl = (self.slot_base[tt, pp] + offset) % RING_SLOTS
        mask0 = self.vmask[tt, pp, sl] | bit
        self.vmask[tt, pp, sl] = mask0
        ones0 = self.vones[tt, pp, sl]
        self.vones[tt, pp, sl] = np.where(value == 1, ones0 | bit,
                                          ones0 & ~bit)
        quorum = _popcount(mask0) >= self.t1
        if not quorum.any():
            return
        if not any_resync:
            firing = quorum & (offset == 0)
            if firing.any():
                self._finish_cascade(tt[firing], pp[firing])
            return
        fire_now = quorum & ~resync & (offset == 0)
        adopt = quorum & resync
        if adopt.any():
            at, ap = tt[adopt], pp[adopt]
            adopted_offset = offset[adopt]
            adopted_round = msg_round[adopt]
            old_base = self.slot_base[at, ap]
            # Discard slots for the rounds below the adopted one: the
            # oracle leaves those votes unread forever.
            for k in range(RING_SLOTS):
                drop = adopted_offset > k
                if not drop.any():
                    break
                self.vmask[at[drop], ap[drop],
                           (old_base[drop] + k) % RING_SLOTS] = np.uint64(0)
                self.vones[at[drop], ap[drop],
                           (old_base[drop] + k) % RING_SLOTS] = np.uint64(0)
            self.slot_base[at, ap] = \
                ((old_base + adopted_offset) % RING_SLOTS).astype(np.int32)
            self.round[at, ap] = adopted_round
            self.base_round[at, ap] = adopted_round
            self.resync[at, ap] = False
            self.base_set[at, ap] = False
            self.est[at, ap] = -1  # _finish_round assigns it next
        firing = fire_now | adopt
        if firing.any():
            self._finish_cascade(tt[firing], pp[firing])

    def _finish_cascade(self, tt: np.ndarray, pp: np.ndarray) -> None:
        """``_finish_round`` plus its buffered-round cascade, vectorized."""
        eng = self.eng
        while tt.size:
            sl0 = self.slot_base[tt, pp]
            count = _popcount(self.vmask[tt, pp, sl0])
            go = count >= self.t1
            if not go.any():
                return
            tt, pp = tt[go], pp[go]
            sl0, count = sl0[go], count[go]
            ones = _popcount(self.vones[tt, pp, sl0])
            zeros = count - ones
            majority_zero = zeros >= ones
            majority_value = np.where(majority_zero, 0, 1).astype(np.int8)
            majority_count = np.where(majority_zero, zeros, ones)
            deciding = (majority_count >= self.t2) & (eng.output[tt, pp] < 0)
            if deciding.any():
                dt, dp = tt[deciding], pp[deciding]
                eng.output[dt, dp] = majority_value[deciding]
                eng.deciding_chain[dt, dp] = eng.max_chain[dt, dp]
            adopting = majority_count >= self.t3
            estimate = majority_value.copy()
            flipping = ~adopting
            if flipping.any():
                estimate[flipping] = eng._draw_coins(tt[flipping],
                                                     pp[flipping])
            self.est[tt, pp] = estimate
            self.vmask[tt, pp, sl0] = np.uint64(0)
            self.vones[tt, pp, sl0] = np.uint64(0)
            self.slot_base[tt, pp] = ((sl0 + 1) % RING_SLOTS).astype(np.int32)
            self.round[tt, pp] += 1
            self.base_round[tt, pp] += 1
            # Loop: the advanced slot 0 may already hold >= t1 buffered
            # votes (the oracle's recursive cascade).

    def reset(self, resetting: np.ndarray) -> None:
        self.round[resetting] = -1
        self.est[resetting] = -1
        self.resync[resetting] = True
        self.base_set[resetting] = False
        self.base_round[resetting] = 0
        self.slot_base[resetting] = 0
        self.vmask[resetting] = np.uint64(0)
        self.vones[resetting] = np.uint64(0)


class _BenOrKernel:
    """Vectorized ``BenOrAgreement`` state machine.

    Same ring layout as the reset-tolerant kernel with an extra phase
    axis: slot ``(slot_base + (r - round)) % RING_SLOTS`` holds round
    ``r``'s report (tag 0) and proposal (tag 1) bitmasks.  The report
    slot survives the report->propose transition (late reports for the
    current round are rejected by the skip rule, exactly like the
    oracle's processed-key set); both planes clear when the round
    advances.
    """

    _FIELDS = ("round", "phase", "est", "prop", "slot_base", "bmask",
               "bones", "bnone")

    def __init__(self, eng: BatchedWindowEngine) -> None:
        self.eng = eng
        self.quorum = eng.n - eng.t
        trials, n = eng.size, eng.n
        self.round = np.ones((trials, n), dtype=np.int32)
        self.phase = np.zeros((trials, n), dtype=np.int8)
        self.est = eng.inputs_arr.copy()
        self.prop = np.full((trials, n), -1, dtype=np.int8)
        self.slot_base = np.zeros((trials, n), dtype=np.int32)
        self.bmask = np.zeros((trials, n, RING_SLOTS, 2), dtype=np.uint64)
        self.bones = np.zeros((trials, n, RING_SLOTS, 2), dtype=np.uint64)
        self.bnone = np.zeros((trials, n, RING_SLOTS, 2), dtype=np.uint64)

    def gather(self, keep: np.ndarray) -> None:
        for name in self._FIELDS:
            setattr(self, name, getattr(self, name)[keep])

    # -- sending ---------------------------------------------------------
    def sends_allowed(self) -> np.ndarray:
        return np.ones(self.round.shape, dtype=bool)

    def compose(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        values = np.where(self.phase == _REPORT, self.est, self.prop)
        return self.round, values.astype(np.int8), self.phase

    # -- adversary views -------------------------------------------------
    def adversary_estimate(self) -> np.ndarray:
        return np.where(self.phase == _REPORT, self.est, self.prop)

    def will_send(self) -> np.ndarray:
        return np.ones(self.round.shape, dtype=bool)

    def waiting(self) -> int:
        return self.quorum

    def default_block_threshold(self) -> np.ndarray:
        # _default_block_threshold inspects processor 0's phase.
        return np.where(self.phase[:, 0] == _REPORT,
                        self.eng.n // 2 + 1, 1).astype(np.int64)

    # -- receiving -------------------------------------------------------
    def insert(self, sender: int, tt: np.ndarray, pp: np.ndarray,
               msg_round: np.ndarray, msg_value: np.ndarray,
               msg_tag: Optional[np.ndarray]) -> None:
        bit = np.uint64(1) << np.uint64(sender)
        offset = msg_round - self.round[tt, pp]
        # Skip: past rounds, and current-round reports once the processor
        # already moved to its proposal phase (the oracle's processed set).
        skip = (offset < 0) | ((offset == 0) & (msg_tag == _REPORT)
                               & (self.phase[tt, pp] == _PROPOSE))
        overflow = offset >= RING_SLOTS
        if overflow.any():
            self.eng._quarantine_trials(tt[overflow])
        keep = ~skip & ~overflow
        if keep.all():
            value = msg_value
            tg = msg_tag.astype(np.int64)
        else:
            if not keep.any():
                return
            tt, pp = tt[keep], pp[keep]
            offset = offset[keep]
            value = msg_value[keep]
            tg = msg_tag[keep].astype(np.int64)
        sl = (self.slot_base[tt, pp] + offset) % RING_SLOTS
        mask0 = self.bmask[tt, pp, sl, tg]
        self.bmask[tt, pp, sl, tg] = mask0 | bit
        ones0 = self.bones[tt, pp, sl, tg]
        self.bones[tt, pp, sl, tg] = np.where(value == 1, ones0 | bit,
                                              ones0 & ~bit)
        none0 = self.bnone[tt, pp, sl, tg]
        self.bnone[tt, pp, sl, tg] = np.where(value == -1, none0 | bit,
                                              none0 & ~bit)
        self._advance_cascade(tt, pp)

    def _advance_cascade(self, tt: np.ndarray, pp: np.ndarray) -> None:
        """The oracle's ``_maybe_advance`` while-loop, vectorized."""
        eng = self.eng
        n = eng.n
        while tt.size:
            sl0 = self.slot_base[tt, pp]
            ph = self.phase[tt, pp].astype(np.int64)
            count = _popcount(self.bmask[tt, pp, sl0, ph])
            go = count >= self.quorum
            if not go.any():
                return
            tt, pp = tt[go], pp[go]
            sl0, ph = sl0[go], ph[go]
            finishing_report = ph == _REPORT
            if finishing_report.any():
                rt = tt[finishing_report]
                rp = pp[finishing_report]
                rs = sl0[finishing_report]
                ones = _popcount(self.bones[rt, rp, rs, _REPORT])
                zeros = _popcount(self.bmask[rt, rp, rs, _REPORT]) - ones
                proposal = np.where(
                    2 * ones > n, 1,
                    np.where(2 * zeros > n, 0, -1)).astype(np.int8)
                self.prop[rt, rp] = proposal
                self.phase[rt, rp] = _PROPOSE
            finishing_proposal = ~finishing_report
            if finishing_proposal.any():
                qt = tt[finishing_proposal]
                qp = pp[finishing_proposal]
                qs = sl0[finishing_proposal]
                ones = _popcount(self.bones[qt, qp, qs, _PROPOSE])
                nones = _popcount(self.bnone[qt, qp, qs, _PROPOSE])
                zeros = _popcount(self.bmask[qt, qp, qs, _PROPOSE]) \
                    - ones - nones
                # Strictly-greater scan over (0, 1): ties favour 0.
                strongest = np.where(
                    ones > zeros, 1,
                    np.where(zeros > 0, 0, -1)).astype(np.int8)
                strongest_count = np.where(ones > zeros, ones, zeros)
                deciding = ((strongest >= 0)
                            & (strongest_count >= eng.t + 1)
                            & (eng.output[qt, qp] < 0))
                if deciding.any():
                    dt, dp = qt[deciding], qp[deciding]
                    eng.output[dt, dp] = strongest[deciding]
                    eng.deciding_chain[dt, dp] = eng.max_chain[dt, dp]
                estimate = strongest.copy()
                flipping = strongest < 0
                if flipping.any():
                    estimate[flipping] = eng._draw_coins(qt[flipping],
                                                         qp[flipping])
                self.est[qt, qp] = estimate
                self.bmask[qt, qp, qs] = np.uint64(0)
                self.bones[qt, qp, qs] = np.uint64(0)
                self.bnone[qt, qp, qs] = np.uint64(0)
                self.slot_base[qt, qp] = \
                    ((qs + 1) % RING_SLOTS).astype(np.int32)
                self.round[qt, qp] += 1
                self.phase[qt, qp] = _REPORT
            # Loop: report finishers now check their proposal plane,
            # round finishers the next round's report plane.

    def reset(self, resetting: np.ndarray) -> None:
        # Full restart (unreachable under the supported adversary set —
        # support.py declines ben-or specs whose schedules reset).
        self.round[resetting] = 1
        self.phase[resetting] = _REPORT
        self.est = np.where(resetting, self.eng.inputs_arr, self.est)
        self.prop[resetting] = -1
        self.slot_base[resetting] = 0
        self.bmask[resetting] = np.uint64(0)
        self.bones[resetting] = np.uint64(0)
        self.bnone[resetting] = np.uint64(0)


# ----------------------------------------------------------------------
# Adversary drivers.
# ----------------------------------------------------------------------
class _BenignDriver:
    """Full delivery, no faults."""

    def next_window(self, eng: BatchedWindowEngine):
        return ("uniform", np.ones(eng.crashed.shape, dtype=bool)), \
            None, None, None

    def gather(self, keep: np.ndarray) -> None:
        pass


class _SilencingDriver:
    """Constant sender exclusion (``silenced`` defaults to ``range(t)``)."""

    def __init__(self, eng: BatchedWindowEngine) -> None:
        self.smask = np.ones(eng.crashed.shape, dtype=bool)
        for i, spec in enumerate(eng.specs):
            silenced = spec.adversary_kwargs.get("silenced")
            if silenced is None:
                silenced = range(eng.t)
            for pid in silenced:
                if 0 <= pid < eng.n:
                    self.smask[i, pid] = False

    def next_window(self, eng: BatchedWindowEngine):
        return ("uniform", self.smask), None, None, None

    def gather(self, keep: np.ndarray) -> None:
        self.smask = self.smask[keep]


class _ReplayDriver:
    """Per-trial fixed schedules with benign/repeat padding.

    All active trials share one window index (a trial leaves the batch
    forever when it stops), so a single position counter replays every
    schedule in lock-step, exactly like per-trial
    ``ReplayScheduleAdversary`` instances would.
    """

    def __init__(self, eng: BatchedWindowEngine) -> None:
        n = eng.n
        self.pads: List[str] = []
        self.schedules: List[List[Tuple[np.ndarray, np.ndarray, np.ndarray,
                                        np.ndarray]]] = []
        for spec in eng.specs:
            self.pads.append(spec.adversary_kwargs.get("pad", "benign"))
            compiled = []
            for window in replay_windows(spec):
                senders = np.zeros((n, n), dtype=bool)
                for receiver, allowed in enumerate(window.senders_for):
                    senders[receiver, list(allowed)] = True
                resets = np.zeros(n, dtype=bool)
                resets[list(window.resets)] = True
                crashes = np.zeros(n, dtype=bool)
                crashes[list(window.crashes)] = True
                deliver_last = np.zeros(n, dtype=bool)
                deliver_last[list(window.deliver_last)] = True
                compiled.append((senders, resets, crashes, deliver_last))
            self.schedules.append(compiled)
        self._position = 0

    def next_window(self, eng: BatchedWindowEngine):
        position = self._position
        self._position += 1
        trials, n = eng.crashed.shape
        senders = np.ones((trials, n, n), dtype=bool)
        resets = np.zeros((trials, n), dtype=bool)
        crashes = np.zeros((trials, n), dtype=bool)
        deliver_last = np.zeros((trials, n), dtype=bool)
        for i in np.flatnonzero(eng.active):
            schedule = self.schedules[int(i)]
            if position < len(schedule):
                window = schedule[position]
            elif self.pads[int(i)] == "repeat" and schedule:
                window = schedule[-1]
            else:
                continue  # benign padding: defaults already full delivery
            senders[i], resets[i], crashes[i], deliver_last[i] = window
        return (("per_receiver", senders),
                deliver_last if deliver_last.any() else None,
                resets if resets.any() else None,
                crashes if crashes.any() else None)

    def gather(self, keep: np.ndarray) -> None:
        keep_list = [int(i) for i in keep]
        self.pads = [self.pads[i] for i in keep_list]
        self.schedules = [self.schedules[i] for i in keep_list]


class _SplitVoteDriver:
    """Vectorized split-vote (and adaptive-resetting) adversary.

    The ordering-block and lost-control paths are pure array math; only
    the exclusion path consumes adversary randomness, and there the
    driver calls the *real* per-trial ``Random.sample`` on the same
    pid-ordered voter lists the oracle builds, so the streams stay
    bit-identical.
    """

    def __init__(self, eng: BatchedWindowEngine, adaptive: bool) -> None:
        self.adaptive = adaptive
        self.rngs = [seeded_rng(spec.adversary_kwargs["seed"])
                     for spec in eng.specs]
        self.block_threshold = np.array(
            [-1 if spec.adversary_kwargs.get("block_threshold") is None
             else spec.adversary_kwargs["block_threshold"]
             for spec in eng.specs], dtype=np.int64)
        self.budget = None
        if adaptive:
            self.budget = np.array(
                [int(eng.t * spec.adversary_kwargs.get("reset_fraction", 1.0))
                 for spec in eng.specs], dtype=np.int64)

    def next_window(self, eng: BatchedWindowEngine):
        kernel = eng.kernel
        estimate = kernel.adversary_estimate()
        live = ~eng.crashed
        zeros_mask = live & (estimate == 0)
        ones_mask = live & (estimate == 1)
        num_zeros = zeros_mask.sum(axis=1, dtype=np.int64)
        num_ones = ones_mask.sum(axis=1, dtype=np.int64)
        threshold = np.where(self.block_threshold >= 0, self.block_threshold,
                             kernel.default_block_threshold())
        waiting = kernel.waiting()
        senders_total = (live & kernel.will_send()).sum(axis=1,
                                                        dtype=np.int64)
        majority_is_zero = num_zeros >= num_ones
        majority_count = np.where(majority_is_zero, num_zeros, num_ones)
        minority_count = num_zeros + num_ones - majority_count
        majority_pool = np.where(majority_is_zero[:, None], zeros_mask,
                                 ones_mask)
        majority_in_prefix = np.maximum(
            0, waiting - (senders_total - majority_count))
        minority_in_prefix = np.minimum(minority_count, waiting)
        blocked = (majority_in_prefix <= threshold - 1) \
            & (minority_in_prefix <= threshold - 1)

        smask = np.ones(estimate.shape, dtype=bool)
        deliver_last = np.zeros(estimate.shape, dtype=bool)
        deliver_last[blocked] = majority_pool[blocked]

        need_hide_zero = np.maximum(0, num_zeros - (threshold - 1))
        need_hide_one = np.maximum(0, num_ones - (threshold - 1))
        feasible = need_hide_zero + need_hide_one <= eng.t
        # Infeasible (~blocked & ~feasible) is the lost-control window:
        # full delivery, and — exactly like the oracle — no RNG consumed.
        excluding = ~blocked & feasible & eng.active
        for index in np.flatnonzero(excluding):
            i = int(index)
            rng = self.rngs[i]
            hidden = (rng.sample(np.flatnonzero(zeros_mask[i]).tolist(),
                                 int(need_hide_zero[i]))
                      + rng.sample(np.flatnonzero(ones_mask[i]).tolist(),
                                   int(need_hide_one[i])))
            smask[i, hidden] = False

        resets = None
        if self.adaptive:
            in_pool_rank = np.cumsum(majority_pool, axis=1)
            resets = majority_pool & (in_pool_rank <= self.budget[:, None])
        return ("uniform", smask), \
            (deliver_last if deliver_last.any() else None), resets, None

    def gather(self, keep: np.ndarray) -> None:
        keep_list = [int(i) for i in keep]
        self.rngs = [self.rngs[i] for i in keep_list]
        self.block_threshold = self.block_threshold[keep]
        if self.budget is not None:
            self.budget = self.budget[keep]


__all__ = ["BatchedWindowEngine", "RING_SLOTS", "CHANNEL_DEPTH"]
