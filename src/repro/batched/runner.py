"""The ``batched`` execution backend: group, vectorize, fall back.

:class:`BatchedRunner` wraps any per-trial runner (``ParallelRunner`` or
``SupervisedRunner``) and routes each submitted
:class:`~repro.runner.spec.TrialSpec` through exactly one of two paths:

* specs :func:`~repro.batched.support.unsupported_reason` accepts are
  grouped by :func:`~repro.batched.support.batch_signature` and executed
  on one :class:`~repro.batched.engine.BatchedWindowEngine` per group;
* everything else — unsupported specs, singleton groups not worth the
  array setup, trials the engine quarantined mid-run, and whole groups
  whose engine raised — flows through the wrapped per-trial runner, the
  bit-identity oracle.

Results come back in submission order regardless of path, so callers
(the experiment grid, fuzz/search campaigns, the results store) cannot
observe which path ran a trial except through :attr:`BatchedRunner.stats`
— and, by the bit-identity contract, through nothing else.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.batched.support import batch_signature, unsupported_reason
from repro.runner.spec import TrialSpec

MIN_BATCH = 2
"""Smallest group worth building array state for; singletons fall back."""


class BatchedRunner:
    """Vectorizing front-end over a per-trial runner.

    Args:
        inner: the per-trial runner executing fallback specs; anything
            with ``iter_results(specs)`` yielding one result per spec in
            order (``ParallelRunner``, ``SupervisedRunner``).
        telemetry: an optional :class:`~repro.telemetry.Telemetry`
            recorder.  Each vectorized group records one ``batch`` span
            (per-trial spans would dominate the fast path's budget) and
            the routing stats mirror into counters; fallback trials are
            recorded by ``inner`` as usual.  Results are bit-identical
            with or without it.

    Attributes:
        stats: counters over the last :meth:`run`/:meth:`iter_results`
            call — ``batched`` / ``fallback`` / ``quarantined`` /
            ``batch_errors``.
        fallback_reasons: ``Counter`` of
            :func:`~repro.batched.support.unsupported_reason` strings.
        errors: ``(signature, repr(exc))`` for engine runs that raised;
            their specs are recovered through the per-trial path, so an
            entry here records a degradation, never data loss.
    """

    def __init__(self, inner: Any,
                 telemetry: Optional[Any] = None) -> None:
        self.inner = inner
        self.telemetry = telemetry
        self.stats: Dict[str, int] = {
            "batched": 0, "fallback": 0, "quarantined": 0,
            "batch_errors": 0}
        self.fallback_reasons: Counter = Counter()
        self.errors: List[Tuple[Tuple[Any, ...], str]] = []

    def _count(self, name: str, delta: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.count(name, delta)

    def run(self, specs: Sequence[TrialSpec]) -> List[Any]:
        """Execute ``specs``; results in submission order."""
        return list(self.iter_results(specs))

    def iter_results(self, specs: Sequence[TrialSpec]) -> Iterator[Any]:
        """Yield one result per spec, in submission order.

        The whole batched portion runs up front (it is the fast path);
        fallback trials then stream through the inner runner, and results
        are interleaved back into submission order as they become
        available.
        """
        specs = list(specs)
        results: List[Any] = [None] * len(specs)
        have: List[bool] = [False] * len(specs)
        fallback: List[int] = []
        reasons_before = Counter(self.fallback_reasons)

        groups: Dict[Tuple[Any, ...], List[int]] = {}
        for index, spec in enumerate(specs):
            reason = unsupported_reason(spec)
            if reason is not None:
                self.fallback_reasons[reason] += 1
                fallback.append(index)
            else:
                groups.setdefault(batch_signature(spec), []).append(index)

        for signature, members in groups.items():
            if len(members) < MIN_BATCH:
                self.fallback_reasons["batch smaller than "
                                      f"{MIN_BATCH}"] += 1
                fallback.extend(members)
                continue
            try:
                group_results, quarantined = self._run_group(
                    signature, [specs[i] for i in members])
            except Exception as exc:
                # Record the failure and recover every member through the
                # per-trial oracle: a batch bug degrades throughput, not
                # results.
                self.stats["batch_errors"] += 1
                self._count("batch_errors")
                self.errors.append((signature, repr(exc)))
                self.fallback_reasons["batch engine error"] += len(members)
                fallback.extend(members)
                continue
            delivered = 0
            for local, result in enumerate(group_results):
                if result is not None:
                    results[members[local]] = result
                    have[members[local]] = True
                    self.stats["batched"] += 1
                    delivered += 1
            self._count("trials_batched", delivered)
            self._count("trials_completed", delivered)
            for local in quarantined:
                self.stats["quarantined"] += 1
                self._count("quarantined_mid_batch")
                self.fallback_reasons["quarantined mid-batch"] += 1
                fallback.append(members[local])

        fallback.sort()
        self.stats["fallback"] += len(fallback)
        if self.telemetry is not None:
            self._count("trials_fallback", len(fallback))
            for reason, total in self.fallback_reasons.items():
                self._count(f"fallback_reason:{reason}",
                            total - reasons_before.get(reason, 0))
        recovered = self.inner.iter_results([specs[i] for i in fallback])
        for index in range(len(specs)):
            if not have[index]:
                # The sorted fallback indices are exactly the not-yet-
                # filled positions in ascending order, so the inner
                # stream lines up positionally.
                results[index] = next(recovered)
            yield results[index]

    def _run_group(self, signature: Tuple[Any, ...],
                   group: List[TrialSpec]
                   ) -> Tuple[List[Any], List[int]]:
        """One vectorized group through the engine, under a ``batch`` span.

        All clock reads stay inside the telemetry layer — the batched
        backend is determinism-linted code and never reads wall time
        itself.  Under ``--profile`` the engine additionally fills the
        session's ``batched.*`` phase timers.
        """
        from repro.batched.engine import BatchedWindowEngine
        from repro.telemetry.profiler import profile_session

        session = profile_session(self.telemetry)
        timers = session.phase_dict("batched") if session is not None \
            else None
        engine = BatchedWindowEngine(group, phase_timers=timers)
        if self.telemetry is None:
            return engine.run()
        with self.telemetry.span(
                "batch", trials=len(group),
                signature=[str(part) for part in signature]):
            return engine.run()


__all__ = ["BatchedRunner", "MIN_BATCH"]
