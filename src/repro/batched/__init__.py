"""Vectorized batched trial execution (numpy-backed, oracle-checked).

This package holds the ``batched`` execution backend: many trials of one
experiment cell run inside a single process with per-processor state laid
out as numpy arrays over ``trials x processors``.  The per-trial engines
in :mod:`repro.simulation` remain the semantic ground truth — every
result produced here is required to be bit-identical to what
:func:`repro.runner.spec.execute_trial` returns for the same spec, and
:mod:`repro.verification.batched_diff` re-checks that on sampled subsets
of real runs.

Import surface:

* :class:`~repro.batched.runner.BatchedRunner` — the backend front-end
  (grouping, fallback, stats).
* :mod:`~repro.batched.support` — capability gating
  (:func:`~repro.batched.support.unsupported_reason`) and backend name
  resolution (:func:`~repro.batched.support.resolve_backend`).
* :class:`~repro.batched.engine.BatchedWindowEngine` — the vectorized
  engine itself (import lazily; it requires numpy).

``repro.batched.support`` imports without numpy installed; the engine
does not, which is why the runner defers importing it until a batch is
actually formed.
"""

from repro.batched.support import (
    BACKEND_AUTO,
    BACKEND_BATCHED,
    BACKEND_TRIAL,
    BACKENDS,
    batch_signature,
    numpy_ok,
    resolve_backend,
    unsupported_reason,
)

__all__ = [
    "BACKENDS",
    "BACKEND_AUTO",
    "BACKEND_BATCHED",
    "BACKEND_TRIAL",
    "batch_signature",
    "numpy_ok",
    "resolve_backend",
    "unsupported_reason",
]
