"""Capability gating and batch grouping for the vectorized backend.

The batched engine (:mod:`repro.batched.engine`) vectorizes a *subset* of
the trial space — the hot (protocol, adversary) combinations behind the
E1/E2 workloads and the search/fuzz inner loops.  Everything else must
keep flowing through the per-trial engines, which remain the bit-identity
oracle.  This module is the single place where that boundary is defined:

* :func:`numpy_ok` — whether a vector backend exists at all.  numpy is an
  optional dependency of this package; when it is missing (or too old to
  provide ``np.bitwise_count``) every spec simply reports unsupported and
  the runner degrades to the per-trial path.
* :func:`unsupported_reason` — ``None`` when a spec is vectorizable, else
  a short human-readable reason (surfaced in runner fallback stats).
* :func:`batch_signature` — the grouping key: specs with equal signatures
  share one :class:`~repro.batched.engine.BatchedWindowEngine` run.
* :func:`resolve_backend` — maps the CLI/TrialSpec backend names
  (``trial`` / ``batched`` / ``auto``) to the backend actually used.

The support checks are deliberately conservative: whenever the per-trial
oracle would *raise* for a spec (invalid thresholds, oversized silenced
set, ``pad="error"`` replay exhaustion, crash budget overflow), the spec
is declared unsupported so the inner runner reproduces the exact failure
instead of the batch engine having to emulate exception timing.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.thresholds import ThresholdConfig, default_thresholds
from repro.runner.spec import TrialSpec
from repro.simulation.windows import WindowSpec

try:  # numpy is optional: absence just disables the batched backend.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

BACKEND_TRIAL = "trial"
BACKEND_BATCHED = "batched"
BACKEND_AUTO = "auto"
BACKENDS = (BACKEND_TRIAL, BACKEND_BATCHED, BACKEND_AUTO)

#: Largest processor count a batch supports: vote tallies are kept as one
#: uint64 sender bitmask per (trial, processor, round-slot).
MAX_PROCESSORS = 64

#: Largest window cap a batch supports: channel messages pack round and
#: chain depth into 24-bit fields (round can cascade up to ``n`` times
#: per window, so the safe cap is ``2**24 / MAX_PROCESSORS``).
MAX_WINDOW_CAP = 200_000

_RT_KWARGS = frozenset({"thresholds", "validate_thresholds"})
_SPLIT_KWARGS = frozenset({"block_threshold", "seed"})
_ADAPTIVE_KWARGS = frozenset({"block_threshold", "seed", "reset_fraction"})


def numpy_ok() -> bool:
    """Whether the vector backend's numpy requirements are met."""
    return _np is not None and hasattr(_np, "bitwise_count")


def effective_thresholds(spec: TrialSpec) -> ThresholdConfig:
    """The (T1, T2, T3) a reset-tolerant trial will actually run with.

    Mirrors ``ResetTolerantAgreement.__init__`` exactly; raises whatever
    it would raise (the caller treats any raise as "fall back, let the
    oracle fail").
    """
    kwargs = dict(spec.protocol_kwargs)
    thresholds = kwargs.get("thresholds")
    if thresholds is None:
        return default_thresholds(spec.n, spec.t)
    if not isinstance(thresholds, ThresholdConfig):
        raise TypeError("thresholds must be a ThresholdConfig")
    if kwargs.get("validate_thresholds", True):
        thresholds.require_valid()
    return thresholds


def replay_windows(spec: TrialSpec) -> Tuple[WindowSpec, ...]:
    """The decoded, validated schedule of a replay-schedule spec."""
    windows = tuple(
        entry if isinstance(entry, WindowSpec)
        else WindowSpec.from_jsonable(entry)
        for entry in spec.adversary_kwargs.get("schedule", ()))
    for window in windows:
        window.validate(spec.n, spec.t)
    return windows


def _adversary_reason(spec: TrialSpec) -> Optional[str]:
    """Adversary-side support check (``None`` when vectorizable)."""
    kwargs: Dict[str, Any] = dict(spec.adversary_kwargs)
    adversary = spec.adversary
    if adversary == "benign":
        if kwargs:
            return "benign adversary takes no kwargs"
        return None
    if adversary == "silencing":
        if set(kwargs) - {"silenced"}:
            return "unsupported silencing kwargs"
        silenced = kwargs.get("silenced")
        if silenced is not None and len(frozenset(silenced)) > spec.t:
            return "oversized silenced set (oracle raises)"
        return None
    if adversary in ("split-vote", "adaptive-resetting"):
        allowed = (_ADAPTIVE_KWARGS if adversary == "adaptive-resetting"
                   else _SPLIT_KWARGS)
        if set(kwargs) - allowed:
            return f"unsupported {adversary} kwargs"
        if kwargs.get("seed") is None:
            # An unseeded adversary draws from the shared fallback stream,
            # whose order of consumption a batch cannot reproduce.
            return "unseeded adversary (shared fallback stream)"
        threshold = kwargs.get("block_threshold")
        if threshold is not None and not isinstance(threshold, int):
            return "non-integer block_threshold"
        if adversary == "adaptive-resetting":
            fraction = kwargs.get("reset_fraction", 1.0)
            if not isinstance(fraction, (int, float)) or \
                    not 0.0 <= fraction <= 1.0:
                return "invalid reset_fraction (oracle raises)"
            if spec.protocol == "ben-or" and int(spec.t * fraction) > 0:
                # A reset restarts Ben-Or at round 1, so every buffered
                # message looks far-future to the ring; such trials would
                # all quarantine, so the batch declines them up front.
                return "resets restart ben-or rounds"
        return None
    if adversary == "replay-schedule":
        if set(kwargs) - {"schedule", "pad"}:
            return "unsupported replay kwargs"
        pad = kwargs.get("pad", "benign")
        schedule = kwargs.get("schedule", ())
        if pad == "error":
            return "pad='error' raises on exhaustion"
        if pad == "repeat" and not schedule:
            return "pad='repeat' with empty schedule (oracle raises)"
        if pad not in ("benign", "repeat"):
            return "unknown pad mode (oracle raises)"
        try:
            windows = replay_windows(spec)
        except Exception:
            return "malformed or invalid schedule window (oracle raises)"
        crashed = frozenset().union(*(w.crashes for w in windows)) \
            if windows else frozenset()
        if len(crashed) > spec.t:
            return "crash budget overflow (oracle raises)"
        if spec.protocol == "ben-or" and any(w.resets for w in windows):
            return "resets restart ben-or rounds"
        return None
    return f"adversary {adversary!r} not vectorized"


def unsupported_reason(spec: TrialSpec) -> Optional[str]:
    """Why ``spec`` cannot run on the batched engine (``None`` if it can)."""
    if not numpy_ok():
        return "numpy >= 2.0 unavailable"
    if spec.engine != "window":
        return "step engine"
    if spec.record_trace:
        return "trace recording"
    if spec.record_configurations:
        return "configuration recording"
    if spec.seed is None:
        # Unseeded trials draw processor RNGs from the shared fallback
        # stream; batching would reorder those draws.
        return "unseeded trial (shared fallback stream)"
    if spec.n > MAX_PROCESSORS:
        return f"n > {MAX_PROCESSORS} (sender bitmask width)"
    if spec.max_windows > MAX_WINDOW_CAP:
        return f"max_windows > {MAX_WINDOW_CAP} (packed round field)"
    if spec.protocol == "reset-tolerant":
        if set(spec.protocol_kwargs) - _RT_KWARGS:
            return "unsupported protocol kwargs"
        try:
            effective_thresholds(spec)
        except Exception:
            return "invalid thresholds (oracle raises)"
    elif spec.protocol == "ben-or":
        if spec.protocol_kwargs:
            return "unsupported protocol kwargs"
        if not spec.t < spec.n / 2:
            return "ben-or needs t < n/2 (oracle raises)"
    else:
        return f"protocol {spec.protocol!r} not vectorized"
    return _adversary_reason(spec)


def batch_signature(spec: TrialSpec) -> Tuple[Any, ...]:
    """The grouping key for one batched-engine run.

    Trials in one batch must share the protocol's scalar parameters
    (thresholds become scalars in the kernels) and the stop rule; seeds,
    inputs, window caps and per-trial adversary kwargs may all differ.
    Only call on specs :func:`unsupported_reason` accepted.
    """
    if spec.protocol == "reset-tolerant":
        thresholds = effective_thresholds(spec)
        protocol_key: Tuple[Any, ...] = (
            thresholds.t1, thresholds.t2, thresholds.t3)
    else:
        protocol_key = ()
    return (spec.protocol, protocol_key, spec.adversary, spec.n, spec.t,
            spec.stop_when)


def resolve_backend(backend: Optional[str]) -> str:
    """Map a requested backend name to the backend actually used.

    ``auto`` selects ``batched`` exactly when numpy is available; an
    explicit ``batched`` without numpy also degrades to ``trial`` (the
    batched runner would pass every spec through anyway).
    """
    if backend is None:
        return BACKEND_TRIAL
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}")
    if backend == BACKEND_TRIAL:
        return BACKEND_TRIAL
    return BACKEND_BATCHED if numpy_ok() else BACKEND_TRIAL


__all__ = [
    "BACKENDS",
    "BACKEND_AUTO",
    "BACKEND_BATCHED",
    "BACKEND_TRIAL",
    "MAX_PROCESSORS",
    "MAX_WINDOW_CAP",
    "batch_signature",
    "effective_thresholds",
    "numpy_ok",
    "replay_windows",
    "resolve_backend",
    "unsupported_reason",
]
