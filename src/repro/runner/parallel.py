"""The parallel trial executor.

:class:`ParallelRunner` fans a list of :class:`~repro.runner.spec.TrialSpec`
out across worker processes with chunked dispatch, preserving submission
order in the returned results.  Because every trial is fully described by
its spec (all randomness is seeded explicitly), the parallel path yields
results bit-identical to the serial fallback (``workers=0``) — worker count
affects wall-clock time only, never values.

The executor prefers the ``fork`` start method when the platform offers it:
forked workers inherit ``sys.path``, so the runner works under test setups
that configure the import path in-process rather than via ``PYTHONPATH``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import (Any, Iterable, Iterator, List, Optional, Sequence,
                    Tuple)

from repro.runner.health import TrialFailure
from repro.runner.spec import TrialSpec, execute_trial

_WORKERS_ENV = "REPRO_WORKERS"

#: A worker-timed execution: ``(result_or_failure, t0_epoch, duration)``.
#: Worker entry points return these so the supervising process can emit
#: trial spans without a second clock read across the process boundary.
TimedResult = Tuple[Any, float, float]


def default_workers() -> int:
    """Worker-count default: ``$REPRO_WORKERS`` if set, else the CPU count."""
    value = os.environ.get(_WORKERS_ENV)
    if value is not None:
        try:
            workers = int(value)
        except ValueError:
            raise ValueError(
                f"{_WORKERS_ENV} must be a non-negative integer, "
                f"got {value!r}") from None
        if workers < 0:
            raise ValueError(f"{_WORKERS_ENV} must be >= 0, got {workers}")
        return workers
    return os.cpu_count() or 1


def _execute_chunk(specs: Sequence[TrialSpec]) -> List[TimedResult]:
    """Worker-side entry point: run one chunk of specs serially.

    Each result comes back with its wall-clock start and duration,
    measured in the worker, so the parent can record per-trial spans —
    the timing rides the existing result pickle and never perturbs the
    trial itself (all randomness is in the seeded spec).
    """
    timed: List[TimedResult] = []
    for spec in specs:
        t0 = time.time()
        start = time.perf_counter()
        timed.append((execute_trial(spec), t0,
                      time.perf_counter() - start))
    return timed


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ParallelRunner:
    """Executes batches of trial specs, optionally across processes.

    Args:
        workers: number of worker processes.  ``0`` selects the serial
            in-process fallback; ``None`` selects :func:`default_workers`.
            The effective count never exceeds the number of specs.
        chunk_size: how many specs each dispatched task carries.  ``None``
            picks a size that gives every worker several chunks (dynamic
            load balancing without drowning in pickling overhead).
        telemetry: an optional :class:`~repro.telemetry.Telemetry`
            recorder; when present, every chunk and trial is recorded as
            a span (timed worker-side) and the ``trials_completed``
            counter advances per chunk.  Never read by trial execution
            itself — results are bit-identical with or without it.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 telemetry: Optional[Any] = None) -> None:
        self.workers = default_workers() if workers is None else workers
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self.telemetry = telemetry

    def run(self, specs: Iterable[TrialSpec]) -> List[Any]:
        """Execute every spec, returning results in submission order."""
        return list(self.iter_results(specs))

    def iter_results(self, specs: Iterable[TrialSpec]) -> Iterator[Any]:
        """Execute every spec, yielding one item per spec in order.

        Results stream as their chunks complete, so a consumer can act on
        early trials (e.g. persist experiment rows) while later trials
        are still running in the workers.  All specs are submitted to the
        pool up front — streaming changes consumption, not parallelism.

        Every chunk is dispatched as its own future, so one failing chunk
        never discards the completed work of the others: the failed chunk
        is re-executed serially in-process, spec by spec, and any spec
        that still raises yields a
        :class:`~repro.runner.health.TrialFailure` in place of its
        result.  (For retries, watchdog timeouts and broken-pool
        recovery, use :class:`~repro.runner.supervisor.SupervisedRunner`.)
        """
        spec_list = list(specs)
        workers = min(self.workers, len(spec_list))
        if workers <= 0 or len(spec_list) == 1:
            for spec in spec_list:
                yield from self._emit_chunk(
                    [spec], self._recover_chunk([spec]), scope="serial")
            return
        chunks = self._chunk_specs(spec_list)
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_mp_context()) as pool:
            futures = [pool.submit(_execute_chunk, chunk)
                       for chunk in chunks]
            for chunk, future in zip(chunks, futures):
                try:
                    batch = future.result()
                    scope = "worker"
                except Exception:
                    # The chunk (or its whole worker) failed; recover it
                    # serially so sibling chunks' results are kept.
                    batch = self._recover_chunk(chunk)
                    scope = "serial"
                yield from self._emit_chunk(chunk, batch, scope=scope)

    def _chunk_specs(self, spec_list: List[TrialSpec]
                     ) -> List[List[TrialSpec]]:
        """Split a batch into dispatch chunks (several per worker)."""
        workers = max(1, min(self.workers, len(spec_list)))
        chunk = self.chunk_size or max(
            1, math.ceil(len(spec_list) / (workers * 4)))
        return [spec_list[i:i + chunk]
                for i in range(0, len(spec_list), chunk)]

    @staticmethod
    def _recover_chunk(specs: Sequence[TrialSpec]) -> List[TimedResult]:
        """Execute specs one by one, recording raisers as failures."""
        recovered: List[TimedResult] = []
        for spec in specs:
            t0 = time.time()
            start = time.perf_counter()
            try:
                result: Any = execute_trial(spec)
            except Exception as error:
                result = TrialFailure(
                    spec=spec, error=repr(error), attempts=1)
            recovered.append((result, t0, time.perf_counter() - start))
        return recovered

    def _emit_chunk(self, specs: Sequence[TrialSpec],
                    batch: Sequence[TimedResult],
                    scope: str) -> Iterator[Any]:
        """Record one chunk's spans/counters and yield its bare results.

        The single unwrap point of the timed-triple worker protocol:
        with telemetry attached, a multi-trial chunk becomes a ``chunk``
        span (worker busy-time) parenting one ``trial`` span per spec;
        a singleton chunk records just the trial span under whatever
        span the consumer currently has open.
        """
        telemetry = self.telemetry
        if telemetry is not None and batch:
            parent = telemetry.current_span
            if len(batch) > 1:
                parent = telemetry.record_span(
                    "chunk",
                    min(entry[1] for entry in batch),
                    sum(entry[2] for entry in batch),
                    trials=len(batch), scope=scope)
            for spec, (result, t0, duration) in zip(specs, batch):
                telemetry.record_span(
                    "trial", t0, duration, parent=parent, tag=spec.tag,
                    scope=scope, ok=not isinstance(result, TrialFailure))
            telemetry.count("trials_completed", len(batch))
        for result, _, _ in batch:
            yield result


def run_trials(specs: Iterable[TrialSpec],
               workers: Optional[int] = None,
               chunk_size: Optional[int] = None,
               policy=None, health=None,
               backend: Optional[str] = None,
               telemetry: Optional[Any] = None) -> List[Any]:
    """Convenience wrapper: build a runner and execute the specs.

    Passing ``policy`` and/or ``health`` selects the supervising executor
    (retries, watchdog, chaos injection) instead of the bare runner.
    ``backend`` selects the execution backend (``trial`` / ``batched`` /
    ``auto``); ``telemetry`` attaches a span/metric recorder (results
    are bit-identical either way); see :func:`_build_runner`.
    """
    return _build_runner(workers, chunk_size, policy, health,
                         backend, telemetry).run(specs)


def iter_trials(specs: Iterable[TrialSpec],
                workers: Optional[int] = None,
                chunk_size: Optional[int] = None,
                policy=None, health=None,
                backend: Optional[str] = None,
                telemetry: Optional[Any] = None) -> Iterator[Any]:
    """Convenience wrapper: stream results in submission order.

    Passing ``policy`` and/or ``health`` selects the supervising executor
    (retries, watchdog, chaos injection) instead of the bare runner.
    ``backend`` selects the execution backend (``trial`` / ``batched`` /
    ``auto``); ``telemetry`` attaches a span/metric recorder (results
    are bit-identical either way); see :func:`_build_runner`.
    """
    return _build_runner(workers, chunk_size, policy, health,
                         backend, telemetry).iter_results(specs)


def _chaos_active(policy) -> bool:
    """Whether ``policy`` carries a chaos spec that actually injects."""
    if policy is None or getattr(policy, "chaos", None) is None:
        return False
    from repro.faults import build_injector
    return build_injector(policy.chaos) is not None


def _build_runner(workers, chunk_size, policy, health,
                  backend: Optional[str] = None,
                  telemetry: Optional[Any] = None) -> Any:
    """Assemble the executor stack for one run.

    The per-trial layer is :class:`ParallelRunner`, or
    :class:`~repro.runner.supervisor.SupervisedRunner` when a ``policy``
    or ``health`` ledger is supplied.  When ``backend`` resolves to
    ``batched`` (and no chaos injection is active — injected faults are a
    per-trial concept, so chaos forces the per-trial path), that layer is
    wrapped in :class:`~repro.batched.runner.BatchedRunner`, which
    vectorizes supported spec groups and falls back to the wrapped runner
    for the rest.  ``telemetry`` is shared by every layer of the stack.
    """
    # Imported lazily: both modules build on this one.
    from repro.batched.support import BACKEND_BATCHED, resolve_backend
    resolved = resolve_backend(backend)
    if policy is None and health is None:
        runner: Any = ParallelRunner(workers=workers, chunk_size=chunk_size,
                                     telemetry=telemetry)
    else:
        from repro.runner.supervisor import SupervisedRunner
        runner = SupervisedRunner(workers=workers, chunk_size=chunk_size,
                                  policy=policy, health=health,
                                  telemetry=telemetry)
    if resolved == BACKEND_BATCHED and not _chaos_active(policy):
        from repro.batched.runner import BatchedRunner
        runner = BatchedRunner(runner, telemetry=telemetry)
    return runner


__all__ = ["ParallelRunner", "run_trials", "iter_trials", "default_workers"]
