"""Run-health accounting: what the resilient executor survived.

A :class:`RunHealth` instance rides along one execution (an experiment
run, a fuzz campaign, a search campaign) and counts every recovery
action the supervising executor took — retries, pool rebuilds, watchdog
timeouts, quarantined trials, torn row writes — plus the trials that
ultimately could not be executed (:class:`TrialFailure`).  The results
store persists the block into ``manifest.json`` under ``run_health``
(accumulating across resumed runs) and ``repro show`` surfaces it, so a
run that survived faults says so instead of silently looking identical
to an untroubled one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runner.spec import TrialSpec

_COUNTERS = ("retries", "pool_rebuilds", "timeouts", "quarantined",
             "torn_writes")


@dataclass(frozen=True)
class TrialFailure:
    """A trial the executor gave up on, yielded in place of its result.

    The runner yields exactly one item per submitted spec; a spec whose
    execution kept failing after every retry and the serial quarantine
    yields one of these instead of an
    :class:`~repro.simulation.trace.ExecutionResult`.  Consumers convert
    it into a recorded failure row instead of dying.

    Attributes:
        spec: the spec that failed.
        error: ``repr`` of the last exception.
        attempts: how many executions were attempted in total.
    """

    spec: TrialSpec
    error: str
    attempts: int

    def to_jsonable(self) -> Dict[str, Any]:
        from repro.faults.injector import spec_fingerprint

        tag = self.spec.tag
        return {
            "tag": list(tag) if isinstance(tag, tuple) else tag,
            "fingerprint": spec_fingerprint(self.spec),
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class RunHealth:
    """Recovery-action counters plus the recorded failures of one run.

    Attributes:
        retries: chunk/trial re-executions after a failure.
        pool_rebuilds: worker pools torn down and rebuilt (broken pool
            or watchdog stall).
        timeouts: watchdog windows that elapsed with no progress.
        quarantined: trials re-executed serially in quarantine after
            their chunk exhausted its retry budget.
        torn_writes: row writes the store observed as torn (and
            recovered by rewriting).
        failures: JSON-able records of trials that never produced a
            result (see :meth:`TrialFailure.to_jsonable`).
    """

    retries: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    quarantined: int = 0
    torn_writes: int = 0
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def record_failure(self, failure: TrialFailure) -> None:
        self.failures.append(failure.to_jsonable())

    @property
    def clean(self) -> bool:
        """Whether the run needed no recovery action at all."""
        return not self.failures and \
            all(getattr(self, name) == 0 for name in _COUNTERS)

    def to_jsonable(self) -> Dict[str, Any]:
        block = {name: getattr(self, name) for name in _COUNTERS}
        block["failures"] = list(self.failures)
        return block

    def summary(self) -> str:
        """One-line rendering for the CLI run header."""
        parts = [f"{name}={getattr(self, name)}" for name in _COUNTERS]
        parts.append(f"failures={len(self.failures)}")
        return " ".join(parts)


def merge_health_block(existing: Optional[Dict[str, Any]],
                       health: RunHealth) -> Dict[str, Any]:
    """Fold one run's health into a (possibly resumed) manifest block.

    Counters accumulate across resumes; failures are deduplicated by
    spec fingerprint, the latest record winning — a poison trial that
    keeps failing across resumes stays one entry, and a trial that
    finally succeeded simply stops being re-recorded (its stale entry is
    dropped once its row exists, by the caller never re-reporting it).
    """
    merged: Dict[str, Any] = {name: 0 for name in _COUNTERS}
    merged["failures"] = []
    if existing:
        for name in _COUNTERS:
            merged[name] = int(existing.get(name, 0))
        merged["failures"] = list(existing.get("failures", []))
    for name in _COUNTERS:
        merged[name] += getattr(health, name)
    by_fingerprint = {entry.get("fingerprint"): entry
                      for entry in merged["failures"]}
    for entry in health.failures:
        by_fingerprint[entry.get("fingerprint")] = entry
    merged["failures"] = [by_fingerprint[key] for key in sorted(
        by_fingerprint, key=lambda value: str(value))]
    return merged


def empty_health_block() -> Dict[str, Any]:
    """The zeroed manifest ``run_health`` block."""
    block: Dict[str, Any] = {name: 0 for name in _COUNTERS}
    block["failures"] = []
    return block


__all__ = ["RunHealth", "TrialFailure", "empty_health_block",
           "merge_health_block"]
