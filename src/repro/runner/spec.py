"""Picklable trial specifications and the worker-side executor.

A :class:`TrialSpec` is a plain-data description of one Monte Carlo trial:
which protocol (by :mod:`repro.protocols.registry` name), which adversary
(by :mod:`repro.adversaries.registry` name, plus constructor kwargs), the
system size, the inputs, and the per-trial seeds.  Because a spec is plain
data it pickles cheaply across process boundaries, and because every source
of randomness is pinned by explicit seeds, executing the same spec anywhere
— in-process or in a worker — produces the identical
:class:`~repro.simulation.trace.ExecutionResult`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.adversaries.registry import build_adversary
from repro.protocols.base import ProtocolFactory
from repro.protocols.registry import get_protocol
from repro.simulation.engine import StepEngine
from repro.simulation.trace import ExecutionResult
from repro.simulation.windows import WindowEngine

WINDOW_ENGINE = "window"
STEP_ENGINE = "step"


def derive_seed(master_seed: int, index: int) -> int:
    """A deterministic, platform-independent 64-bit per-trial seed.

    Hash-derived so that distinct trial indices get statistically
    independent streams while the whole experiment stays reproducible from
    one master seed.  (The experiment functions predating the runner draw
    their seeds from a ``random.Random(master_seed)`` stream instead, to
    preserve their historical outputs; new runner users should prefer this.)
    """
    digest = hashlib.sha256(f"{master_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class TrialSpec:
    """One trial of one experiment, as plain picklable data.

    Attributes:
        protocol: protocol registry name (see
            :func:`repro.protocols.registry.get_protocol`).
        adversary: adversary registry name (see
            :data:`repro.adversaries.registry.ADVERSARIES`).
        n: number of processors.
        t: fault bound.
        inputs: the ``n`` input bits.
        seed: master seed for the engine's processor randomness.
        adversary_kwargs: constructor kwargs for the adversary; must be
            picklable plain data (a Byzantine ``strategy`` may be given as
            a registry name string).
        protocol_kwargs: extra kwargs forwarded to the protocol constructor
            (e.g. a ``ThresholdConfig`` for the ablation experiment).
        engine: ``"window"`` for the acceptable-window engine (the paper's
            strongly adaptive model) or ``"step"`` for the fine-grained
            asynchronous step engine.
        max_windows: window cap (window engine).
        max_steps: step cap (step engine).
        stop_when: ``"first"`` or ``"all"``, as in the engines' ``run``.
        record_configurations: keep per-window configuration snapshots.
        record_trace: attach a full
            :class:`~repro.simulation.trace.ExecutionTrace` to the result,
            for the invariant checker and the differential replayer
            (:mod:`repro.verification`).
        tag: opaque grouping key used by the aggregation helpers; trials of
            the same experiment cell share a tag.
    """

    protocol: str
    adversary: str
    n: int
    t: int
    inputs: Tuple[int, ...]
    seed: Optional[int] = None
    adversary_kwargs: Dict[str, Any] = field(default_factory=dict)
    protocol_kwargs: Dict[str, Any] = field(default_factory=dict)
    engine: str = WINDOW_ENGINE
    max_windows: int = 10000
    max_steps: int = 400000
    stop_when: str = "all"
    record_configurations: bool = False
    record_trace: bool = False
    tag: Any = None

    def __post_init__(self) -> None:
        if self.engine not in (WINDOW_ENGINE, STEP_ENGINE):
            raise ValueError(
                f"engine must be {WINDOW_ENGINE!r} or {STEP_ENGINE!r}, "
                f"got {self.engine!r}")
        if self.stop_when not in ("first", "all"):
            raise ValueError("stop_when must be 'first' or 'all'")
        object.__setattr__(self, "inputs", tuple(self.inputs))


def execute_trial(spec: TrialSpec) -> ExecutionResult:
    """Run one trial described by ``spec`` and return its result.

    This is the worker-side entry point of the parallel runner; it is also
    the serial fallback, so results are bit-identical regardless of where a
    spec executes.
    """
    info = get_protocol(spec.protocol)
    adversary = build_adversary(spec.adversary, **spec.adversary_kwargs)
    factory = ProtocolFactory(info.protocol_cls, n=spec.n, t=spec.t,
                              **spec.protocol_kwargs)
    if spec.engine == WINDOW_ENGINE:
        engine = WindowEngine(
            factory, list(spec.inputs), seed=spec.seed,
            record_configurations=spec.record_configurations,
            record_trace=spec.record_trace)
        return engine.run(adversary, max_windows=spec.max_windows,
                          stop_when=spec.stop_when)
    step_engine = StepEngine(factory, list(spec.inputs), seed=spec.seed,
                             record_trace=spec.record_trace)
    return step_engine.run(adversary, max_steps=spec.max_steps,
                           stop_when=spec.stop_when)


__all__ = ["TrialSpec", "execute_trial", "derive_seed",
           "WINDOW_ENGINE", "STEP_ENGINE"]
