"""Result aggregation: from flat result lists back to experiment cells.

Experiment functions build one :class:`~repro.runner.spec.TrialSpec` per
trial, tagging all trials of the same experiment cell (same ``n``, same
workload, same adversary, ...) with a shared ``tag``.  After a single
:meth:`~repro.runner.parallel.ParallelRunner.run` over the whole batch,
these helpers regroup the flat result list by tag — in first-appearance
order, so rows come out in the same order the serial loops produced them —
and feed per-cell measurements to
:func:`repro.analysis.statistics.summarize_trials`.
"""

from __future__ import annotations

from typing import (Callable, Dict, Hashable, Iterable, List, Sequence,
                    Tuple)

from repro.runner.spec import TrialSpec
from repro.simulation.trace import ExecutionResult


def group_by_tag(specs: Sequence[TrialSpec],
                 results: Sequence[ExecutionResult]
                 ) -> Dict[Hashable, List[ExecutionResult]]:
    """Group results by their spec's tag, preserving first-seen tag order.

    Args:
        specs: the submitted specs, in submission order.
        results: the results, aligned index-for-index with ``specs``.

    Returns:
        An insertion-ordered dict mapping each tag to its results in
        submission order.
    """
    if len(specs) != len(results):
        raise ValueError(
            f"got {len(results)} results for {len(specs)} specs")
    grouped: Dict[Hashable, List[ExecutionResult]] = {}
    for spec, result in zip(specs, results):
        grouped.setdefault(spec.tag, []).append(result)
    return grouped


def measure(results: Iterable[ExecutionResult],
            metric: Callable[[ExecutionResult], float]) -> List[float]:
    """Apply a per-execution metric to every result of a cell."""
    return [metric(result) for result in results]


def windows_to_first_decision(result: ExecutionResult) -> float:
    """The paper's running-time measure, with the window cap as fallback.

    Executions that never decided within the cap report the number of
    windows they survived, matching the serial experiment code's
    ``first_decision_window or windows_elapsed`` convention.
    """
    return float(result.first_decision_window or result.windows_elapsed)


def undecided_windows(result: ExecutionResult) -> float:
    """Acceptable windows that fully elapsed with no processor decided.

    This is the adversary's score in the hardness experiments (E9) and the
    default objective of :mod:`repro.search`: the window of the first
    decision does not count (the adversary failed to keep it undecided),
    while an execution that exhausted its window cap undecided scores every
    window it survived.
    """
    if result.first_decision_window is None:
        return float(result.windows_elapsed)
    return float(result.first_decision_window - 1)


def message_chain_length(result: ExecutionResult) -> float:
    """Deciding message-chain length, falling back to windows elapsed."""
    chain = result.message_chain_length
    if chain is None:
        chain = result.windows_elapsed
    return float(chain)


def correctness_flags(results: Iterable[ExecutionResult]
                      ) -> Tuple[bool, bool, bool]:
    """(agreement, validity, all-live-terminated) ANDed across a cell."""
    agreement_ok = True
    validity_ok = True
    terminated = True
    for result in results:
        agreement_ok &= result.agreement_ok
        validity_ok &= result.validity_ok
        terminated &= result.all_live_decided
    return agreement_ok, validity_ok, terminated


__all__ = [
    "group_by_tag",
    "measure",
    "windows_to_first_decision",
    "undecided_windows",
    "message_chain_length",
    "correctness_flags",
]
