"""Trial-level parallel execution for the Monte Carlo experiments.

The paper's headline numbers are estimates over many independent
adversarial executions.  This package turns each execution into a picklable
:class:`~repro.runner.spec.TrialSpec`, fans batches of specs out across
worker processes (:class:`~repro.runner.parallel.ParallelRunner`, with a
bit-identical serial fallback at ``workers=0``), and regroups the flat
result list into experiment cells (:mod:`repro.runner.aggregate`).

See ``PERFORMANCE.md`` at the repository root for the usage guide.
"""

from repro.runner.aggregate import (correctness_flags, group_by_tag,
                                    measure, message_chain_length,
                                    undecided_windows,
                                    windows_to_first_decision)
from repro.runner.health import (RunHealth, TrialFailure,
                                 empty_health_block, merge_health_block)
from repro.runner.parallel import (ParallelRunner, default_workers,
                                   iter_trials, run_trials)
from repro.runner.spec import (STEP_ENGINE, WINDOW_ENGINE, TrialSpec,
                               derive_seed, execute_trial)
from repro.runner.supervisor import (ExecutionPolicy, RetryPolicy,
                                     SupervisedRunner)

__all__ = [
    "TrialSpec",
    "execute_trial",
    "derive_seed",
    "WINDOW_ENGINE",
    "STEP_ENGINE",
    "ParallelRunner",
    "SupervisedRunner",
    "ExecutionPolicy",
    "RetryPolicy",
    "RunHealth",
    "TrialFailure",
    "empty_health_block",
    "merge_health_block",
    "run_trials",
    "iter_trials",
    "default_workers",
    "group_by_tag",
    "measure",
    "windows_to_first_decision",
    "undecided_windows",
    "message_chain_length",
    "correctness_flags",
]
