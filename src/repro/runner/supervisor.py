"""The supervising executor: retries, watchdog, quarantine, chaos.

:class:`SupervisedRunner` extends the plain chunked fan-out of
:class:`~repro.runner.parallel.ParallelRunner` with the recovery ladder a
long campaign needs to survive real (or injected) faults:

1. **Per-chunk retries** — a chunk whose worker raised is resubmitted,
   with deterministic exponential backoff, up to
   :class:`RetryPolicy.max_retries` times.
2. **Pool rebuilds** — a ``BrokenProcessPool`` (a worker died mid-chunk)
   tears the pool down, builds a fresh one, and re-dispatches only the
   chunks that have not finished; completed results are never recomputed.
3. **Watchdog timeouts** — with a per-trial wall-clock budget set, a
   window in which *no* chunk completes is treated as a hang: the worker
   processes are terminated, the pool is rebuilt, and the in-flight
   chunks count a retry.
4. **Serial quarantine** — a chunk that exhausts its retry budget is
   re-executed spec by spec in the supervising process, isolating the
   poison trial: its innocent neighbours still produce results, and the
   poison trial itself becomes a :class:`~repro.runner.health.
   TrialFailure` recorded in :class:`~repro.runner.health.RunHealth`
   instead of a dead run.

At ``workers=0`` the same ladder degrades gracefully to a serial retry
loop in-process (injected crashes and hangs degrade to recorded raised
faults — see :mod:`repro.faults.injector`).

Because retries re-execute *deterministic* specs, every recovered result
is bit-identical to what a fault-free run would have produced: the
supervisor changes wall-clock time and the health counters, never values.
The executor yields exactly one item per submitted spec, in submission
order — an ``ExecutionResult``, or a ``TrialFailure`` for specs it gave
up on.
"""

from __future__ import annotations

import time
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

from repro.faults.injector import (QUARANTINE_SCOPE, SERIAL_SCOPE,
                                   WORKER_SCOPE, ChaosConfig, FaultInjector,
                                   build_injector)
from repro.runner.health import RunHealth, TrialFailure
from repro.runner.parallel import (ParallelRunner, TimedResult,
                                   _mp_context)
from repro.runner.spec import TrialSpec, execute_trial


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    Attributes:
        max_retries: how many times a failed chunk/trial is re-executed
            before falling through to quarantine (chunks) or a recorded
            failure (trials).  ``0`` disables retries.
        backoff_seconds: base delay before the first retry.
        backoff_cap_seconds: upper bound on any single delay.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_cap_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff delays must be >= 0")

    def delay(self, attempt: int) -> float:
        """The backoff before (1-based) retry ``attempt``."""
        return min(self.backoff_cap_seconds,
                   self.backoff_seconds * (2 ** max(0, attempt - 1)))


@dataclass(frozen=True)
class ExecutionPolicy:
    """Everything the supervising executor is allowed (and told) to do.

    Attributes:
        retry: the chunk/trial retry budget and backoff.
        trial_timeout: per-trial wall-clock budget in seconds; the
            watchdog window for a chunk is ``trial_timeout * len(chunk)``.
            ``None`` disables the watchdog (a hung worker then hangs the
            run — set a budget for chaos runs that inject hangs).
        chaos: the fault pattern to inject (``None`` = no injection).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    trial_timeout: Optional[float] = None
    chaos: Optional[ChaosConfig] = None

    def __post_init__(self) -> None:
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError(
                f"trial_timeout must be positive, got {self.trial_timeout}")
        if self.chaos is not None and self.chaos.hang > 0 and \
                self.trial_timeout is None:
            raise ValueError(
                "chaos hang injection needs a trial timeout "
                "(--trial-timeout), or hung workers would hang the run")


def _execute_chunk_guarded(specs: Sequence[TrialSpec],
                           injector: Optional[FaultInjector],
                           attempt: int) -> List[TimedResult]:
    """Worker-side entry point: run one chunk, applying injected faults.

    Like :func:`repro.runner.parallel._execute_chunk`, each result comes
    back as a ``(result, t0, duration)`` triple timed in the worker, so
    the supervisor can record trial spans without re-clocking.
    """
    timed: List[TimedResult] = []
    for spec in specs:
        t0 = time.time()
        start = time.perf_counter()
        if injector is None:
            result = execute_trial(spec)
        else:
            result = injector.apply(spec, attempt, WORKER_SCOPE)
        timed.append((result, t0, time.perf_counter() - start))
    return timed


class SupervisedRunner(ParallelRunner):
    """A :class:`ParallelRunner` wrapped in the full recovery ladder.

    Args:
        workers: as in :class:`ParallelRunner`.
        chunk_size: as in :class:`ParallelRunner`.
        policy: retry/watchdog/chaos configuration
            (default: :class:`ExecutionPolicy`'s defaults — 2 retries,
            no watchdog, no chaos).
        health: the :class:`RunHealth` ledger to record recovery actions
            into (default: a fresh one, exposed as ``self.health``).
        telemetry: as in :class:`ParallelRunner`; the supervisor
            additionally mirrors its recovery counters (retries, pool
            rebuilds, timeouts, quarantines) into the event stream and
            gauges the in-flight chunk count.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 policy: Optional[ExecutionPolicy] = None,
                 health: Optional[RunHealth] = None,
                 telemetry: Optional[Any] = None) -> None:
        super().__init__(workers=workers, chunk_size=chunk_size,
                         telemetry=telemetry)
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.health = health if health is not None else RunHealth()
        self.injector = build_injector(self.policy.chaos)

    def _count(self, name: str, delta: int = 1) -> None:
        """Mirror a recovery action into the telemetry counters."""
        if self.telemetry is not None:
            self.telemetry.count(name, delta)

    def _gauge(self, name: str, value: Any) -> None:
        if self.telemetry is not None:
            self.telemetry.gauge(name, value)

    # -- public surface ------------------------------------------------
    def iter_results(self, specs: Iterable[TrialSpec]) -> Iterator[Any]:
        """Execute every spec, yielding one item per spec in order.

        Items are ``ExecutionResult``s, or :class:`TrialFailure` for
        specs whose execution kept failing through every recovery rung.
        """
        spec_list = list(specs)
        workers = min(self.workers, len(spec_list))
        if workers <= 0 or len(spec_list) == 1:
            for spec in spec_list:
                yield from self._emit_chunk(
                    [spec], [self._run_serial(spec, scope=SERIAL_SCOPE)],
                    scope="serial")
            return
        yield from self._supervise(self._chunk_specs(spec_list), workers)

    # -- serial / quarantine path --------------------------------------
    def _execute_once(self, spec: TrialSpec, attempt: int,
                      scope: str) -> Any:
        if self.injector is not None:
            return self.injector.apply(spec, attempt, scope)
        return execute_trial(spec)

    def _run_serial(self, spec: TrialSpec, scope: str,
                    base_attempt: int = 0) -> TimedResult:
        """One spec through the in-process retry loop of ``scope``.

        Quarantine gets a single shot: its chunk already spent the whole
        retry budget, so a failure there is final.  Returns a timed
        triple covering the final attempt only — backoff sleeps and
        failed attempts are recovery overhead, not trial time.
        """
        rounds = 1 if scope == QUARANTINE_SCOPE \
            else self.policy.retry.max_retries + 1
        attempt = base_attempt
        last_error: Optional[BaseException] = None
        t0 = duration = 0.0
        for round_index in range(rounds):
            t0 = time.time()
            start = time.perf_counter()
            try:
                result = self._execute_once(spec, attempt, scope)
                return (result, t0, time.perf_counter() - start)
            except Exception as error:
                duration = time.perf_counter() - start
                last_error = error
                attempt += 1
                if round_index < rounds - 1:
                    self.health.retries += 1
                    self._count("retries")
                    time.sleep(self.policy.retry.delay(attempt))
        failure = TrialFailure(spec=spec, error=repr(last_error),
                               attempts=attempt)
        self.health.record_failure(failure)
        return (failure, t0, duration)

    def _quarantine(self, specs: Sequence[TrialSpec],
                    base_attempt: int) -> List[TimedResult]:
        """Re-run an exhausted chunk spec-by-spec in this process.

        Isolates the poison trial: innocents produce their (bit-identical)
        results; the trial that keeps failing becomes a recorded
        :class:`TrialFailure`.
        """
        self.health.quarantined += len(specs)
        self._count("quarantined", len(specs))
        return [self._run_serial(spec, scope=QUARANTINE_SCOPE,
                                 base_attempt=base_attempt)
                for spec in specs]

    # -- the supervised parallel loop ----------------------------------
    def _supervise(self, chunks: List[List[TrialSpec]],
                   workers: int) -> Iterator[Any]:
        attempts = [0] * len(chunks)
        resolved: Dict[int, Tuple[List[TimedResult], str]] = {}
        next_yield = 0
        pool: Optional[ProcessPoolExecutor] = None
        futures: Dict[Any, int] = {}
        self._gauge("workers", workers)

        def gauge_flight() -> None:
            self._gauge("in_flight", len(futures))
            self._gauge("queue_depth",
                        max(0, len(chunks) - next_yield - len(resolved)
                            - len(futures)))

        def submit(index: int) -> bool:
            """Dispatch one chunk; False when the pool is already broken."""
            try:
                futures[pool.submit(
                    _execute_chunk_guarded, chunks[index], self.injector,
                    attempts[index])] = index
                return True
            except BrokenExecutor:
                return False

        def settle(index: int) -> bool:
            """Count a chunk failure; True when it went to quarantine."""
            attempts[index] += 1
            if attempts[index] <= self.policy.retry.max_retries:
                self.health.retries += 1
                self._count("retries")
                return False
            resolved[index] = (self._quarantine(chunks[index],
                                                attempts[index]),
                               QUARANTINE_SCOPE)
            return True

        def rebuild_after_failure() -> None:
            nonlocal pool, futures
            self._teardown(pool)
            pool = None
            self.health.pool_rebuilds += 1
            self._count("pool_rebuilds")
            affected = sorted(futures.values())
            futures = {}
            for index in affected:
                settle(index)
            if affected:
                time.sleep(self.policy.retry.delay(
                    max(attempts[index] for index in affected)))

        try:
            while next_yield < len(chunks):
                while next_yield < len(chunks) and next_yield in resolved:
                    batch, scope = resolved.pop(next_yield)
                    yield from self._emit_chunk(chunks[next_yield], batch,
                                                scope=scope)
                    next_yield += 1
                if next_yield >= len(chunks):
                    break
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=workers,
                                               mp_context=_mp_context())
                    futures = {}
                    broken = False
                    for index in range(len(chunks)):
                        if index not in resolved and not submit(index):
                            broken = True
                            break
                    if broken:
                        rebuild_after_failure()
                    gauge_flight()
                    continue
                if not futures:
                    # Unreached in normal operation (unresolved chunks
                    # are always in flight); force a rebuild rather than
                    # spin if an unknown path ever lands here.
                    self._teardown(pool)
                    pool = None
                    continue
                window = self._watchdog_window(
                    [chunks[index] for index in futures.values()])
                done, _ = wait(set(futures), timeout=window,
                               return_when=FIRST_COMPLETED)
                if not done:
                    # No chunk finished inside the watchdog window: at
                    # least one worker is hung.  Kill and rebuild.
                    self.health.timeouts += 1
                    self._count("timeouts")
                    rebuild_after_failure()
                    continue
                pool_broken = False
                for future in done:
                    index = futures.pop(future)
                    error = future.exception()
                    if error is None:
                        resolved[index] = (future.result(), WORKER_SCOPE)
                    elif isinstance(error, BrokenExecutor):
                        pool_broken = True
                        settle(index)
                    else:
                        # The chunk itself raised (the pool survives):
                        # retry in place or quarantine.
                        if not settle(index) and not pool_broken:
                            time.sleep(self.policy.retry.delay(
                                attempts[index]))
                            if not submit(index):
                                pool_broken = True
                if pool_broken:
                    rebuild_after_failure()
                gauge_flight()
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _watchdog_window(self,
                         in_flight: List[List[TrialSpec]]
                         ) -> Optional[float]:
        """The no-progress window before declaring a stall, or ``None``.

        Conservative: sized for the *largest* in-flight chunk, so a slow
        but progressing pool is never mistaken for a hung one as long as
        ``trial_timeout`` genuinely bounds one trial.
        """
        if self.policy.trial_timeout is None or not in_flight:
            return None
        return self.policy.trial_timeout * max(
            len(chunk) for chunk in in_flight)

    @staticmethod
    def _teardown(pool: Optional[ProcessPoolExecutor]) -> None:
        """Terminate a (possibly hung) pool's workers and discard it."""
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)


__all__ = ["ExecutionPolicy", "RetryPolicy", "SupervisedRunner"]
