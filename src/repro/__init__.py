"""repro: a reproduction of Lewko & Lewko (PODC 2013).

"On the Complexity of Asynchronous Agreement Against Powerful Adversaries"
introduces the strongly adaptive adversary (full-information asynchronous
scheduling plus adaptive *resetting* failures), shows that Ben-Or/Bracha
style threshold voting still achieves measure-one correctness and
termination against it (Theorem 4), and proves that the accompanying
exponential running time is unavoidable: any algorithm with measure-one
correctness and termination needs exponentially many acceptable windows
against the strongly adaptive adversary (Theorem 5), and the same holds in
message-chain length for forgetful, fully communicative algorithms against a
plain crash adversary (Theorem 17).

This package provides:

* :mod:`repro.simulation` — the asynchronous message-passing execution model
  (processors, channels, acceptable windows, step-level executions,
  configurations).
* :mod:`repro.core` — the paper's reset-tolerant algorithm, its threshold
  constraints, the Talagrand toolkit and the executable lower-bound
  machinery.
* :mod:`repro.protocols` — baseline protocols (Ben-Or, Bracha, committee
  election) the paper builds on or contrasts against.
* :mod:`repro.adversaries` — benign, crash, Byzantine, split-vote,
  adaptively resetting and lookahead adversaries.
* :mod:`repro.analysis` — product-measure tools, statistics and the
  backwards-compatible experiment wrappers.
* :mod:`repro.experiments` — the declarative experiment registry behind
  the EXPERIMENTS.md tables (E1–E9).
* :mod:`repro.results` — the persistent, resumable results store.
* :mod:`repro.verification` — the independent invariant checker, the
  adversarial schedule fuzzer, counterexample minimization, and the
  window-vs-step differential replayer.
* :mod:`repro.search` — guided adversary search: admissibility-preserving
  schedule optimization toward the paper's hardness objectives, with
  replayable best-schedule artifacts.
* :mod:`repro.cli` — the unified ``python -m repro`` / ``repro`` command
  line (``list`` / ``run`` / ``show`` / ``fuzz`` / ``search`` /
  ``replay``).
* :mod:`repro.runner` — the parallel Monte Carlo trial runner.
* :mod:`repro.workloads` — input assignments.

Quickstart::

    from repro import (ResetTolerantAgreement, BenignAdversary,
                       run_execution, max_tolerable_t)

    n = 24
    t = max_tolerable_t(n)
    result = run_execution(ResetTolerantAgreement, n=n, t=t,
                           inputs=[i % 2 for i in range(n)],
                           adversary=BenignAdversary(), max_windows=100,
                           seed=7)
    assert result.correct and result.all_live_decided
"""

from repro.adversaries import (AdaptiveResettingAdversary, BenignAdversary,
                               ByzantineAdversary, CrashAtDecisionAdversary,
                               CrashSplitVoteAdversary, EquivocateStrategy,
                               FlipValueStrategy, LookaheadAdversary,
                               RandomSchedulerAdversary, SilencingAdversary,
                               SilentStrategy, SplitVoteAdversary,
                               StaticCrashAdversary)
from repro.core import (LowerBoundConstants, ResetTolerantAgreement,
                        ThresholdConfig, default_thresholds,
                        fast_decide_thresholds, lower_bound_constants,
                        lower_bound_report, max_tolerable_t,
                        predicted_lower_bound, split_vote_analysis,
                        talagrand_bound)
from repro.protocols import (BenOrAgreement, BrachaAgreement,
                             CommitteeElectionProtocol, ProtocolFactory,
                             available_protocols, get_protocol)
from repro.simulation import (Configuration, ExecutionResult, Message,
                              StepEngine, WindowEngine, WindowSpec,
                              run_execution)
from repro.verification import (InvariantChecker, ScheduleReplayAdversary,
                                VerificationReport, differential_replay,
                                replay_schedule, run_fuzz_campaign,
                                shrink_schedule)

__version__ = "1.2.0"

__all__ = [
    "AdaptiveResettingAdversary",
    "BenignAdversary",
    "ByzantineAdversary",
    "CrashAtDecisionAdversary",
    "CrashSplitVoteAdversary",
    "EquivocateStrategy",
    "FlipValueStrategy",
    "LookaheadAdversary",
    "RandomSchedulerAdversary",
    "SilencingAdversary",
    "SilentStrategy",
    "SplitVoteAdversary",
    "StaticCrashAdversary",
    "LowerBoundConstants",
    "ResetTolerantAgreement",
    "ThresholdConfig",
    "default_thresholds",
    "fast_decide_thresholds",
    "lower_bound_constants",
    "lower_bound_report",
    "max_tolerable_t",
    "predicted_lower_bound",
    "split_vote_analysis",
    "talagrand_bound",
    "BenOrAgreement",
    "BrachaAgreement",
    "CommitteeElectionProtocol",
    "ProtocolFactory",
    "available_protocols",
    "get_protocol",
    "Configuration",
    "ExecutionResult",
    "Message",
    "StepEngine",
    "WindowEngine",
    "WindowSpec",
    "run_execution",
    "InvariantChecker",
    "VerificationReport",
    "ScheduleReplayAdversary",
    "differential_replay",
    "replay_schedule",
    "run_fuzz_campaign",
    "shrink_schedule",
    "__version__",
]
