"""The message buffer connecting processors.

The network models the dedicated per-pair channels of the paper's model: a
sent message sits in the buffer until the adversary schedules its delivery.
The network never loses or duplicates messages on its own — all scheduling
power lives in the adversary.  It supports the operations the two execution
engines need:

* accepting a batch of messages from a sending step (stamping sequence
  numbers and message-chain depths);
* enumerating undelivered messages, optionally filtered by receiver and by a
  set of allowed senders (how acceptable windows express the sets ``S_i``);
* removing a message once delivered;
* dropping messages addressed to or sent by crashed processors, when the
  crash adversary decides they are lost.

Internally the buffer is indexed for the access patterns the engines
actually have: a dict keyed by sequence number makes :meth:`Network.deliver`
O(1), and per-receiver-per-sender deques make the acceptable-window delivery
(:meth:`Network.take_window_deliveries`) proportional to the number of
allowed senders rather than to the number of undelivered messages.  Removal
through the sequence index leaves ghost entries in the deques; they are
skipped (and trimmed from the newest end) lazily.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import (Callable, Deque, Dict, Iterable, Iterator, List,
                    Optional, Set)

from repro.simulation.errors import InvalidStepError
from repro.simulation.message import Message


class Network:
    """A message buffer with adversary-controlled delivery.

    Attributes:
        n: number of processors attached to the network.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._sequence = 0
        # Undelivered messages keyed by sequence number: the authoritative
        # "is this message still pending?" index, giving O(1) delivery.
        self._live: Dict[int, Message] = {}
        # Per-receiver, per-sender channel queues in send order.  Entries
        # whose sequence is no longer in ``_live`` are ghosts left behind by
        # out-of-order delivery or drops and are skipped lazily.
        self._channels: Dict[int, Dict[int, Deque[Message]]] = \
            defaultdict(dict)
        self._delivered_count = 0
        self._sent_count = 0

    # ------------------------------------------------------------------
    # Sending.
    # ------------------------------------------------------------------
    def submit(self, messages: Iterable[Message],
               chain_depth: int = 1) -> List[Message]:
        """Place messages into the buffer, stamping bookkeeping fields.

        Args:
            messages: messages produced by a sending step.
            chain_depth: message-chain depth to stamp on each message
                (``1 +`` the deepest chain the sender had received).

        Returns:
            The stamped messages actually stored in the buffer.  Stamping
            happens in place (messages are mutable until submitted), so
            these are the same objects the caller passed in.
        """
        stored = []
        n = self.n
        sequence = self._sequence
        live = self._live
        all_channels = self._channels
        try:
            for message in messages:
                receiver = message.receiver
                if not 0 <= receiver < n:
                    raise InvalidStepError(
                        f"message addressed to unknown processor {receiver}")
                if not 0 <= message.sender < n:
                    raise InvalidStepError(
                        f"message from unknown processor {message.sender}")
                message.stamp_in_place(sequence, chain_depth)
                live[sequence] = message
                sequence += 1
                channels = all_channels[receiver]
                queue = channels.get(message.sender)
                if queue is None:
                    queue = channels[message.sender] = deque()
                queue.append(message)
                stored.append(message)
        finally:
            # Messages accepted before a mid-batch validation error stay
            # in the buffer, exactly as with per-message bookkeeping.
            self._sent_count += sequence - self._sequence
            self._sequence = sequence
        return stored

    # ------------------------------------------------------------------
    # Internal filtered scans.
    # ------------------------------------------------------------------
    def _live_matching(self, receiver: int,
                       senders: Optional[Set[int]] = None,
                       predicate: Optional[Callable[[Message], bool]] = None
                       ) -> Iterator[Message]:
        """Iterate the live (still pending) messages for one receiver.

        The single filtered-scan primitive shared by :meth:`pending_for`,
        :meth:`drop_channel` and :meth:`clear_stale_rounds`: optionally
        restricted to a sender set and to messages matching ``predicate``.
        Ghost entries are skipped.  Iteration order is per-channel send
        order; callers needing global send order sort by sequence.
        """
        channels = self._channels.get(receiver)
        if not channels:
            return
        if senders is None:
            queues = channels.values()
        else:
            queues = [channels[s] for s in senders if s in channels]
        live = self._live
        for queue in queues:
            for message in queue:
                if message.sequence in live and (
                        predicate is None or predicate(message)):
                    yield message

    def _discard(self, messages: Iterable[Message]) -> int:
        """Remove messages from the live index, returning how many were live."""
        dropped = 0
        for message in messages:
            if self._live.pop(message.sequence, None) is not None:
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------
    def pending_for(self, receiver: int,
                    senders: Optional[Set[int]] = None) -> List[Message]:
        """Undelivered messages addressed to ``receiver``.

        Args:
            receiver: the destination processor.
            senders: if given, only messages from these senders are listed.

        Returns:
            Messages in send order.
        """
        return sorted(self._live_matching(receiver, senders),
                      key=lambda m: m.sequence)

    def pending_count(self) -> int:
        """Total number of undelivered messages."""
        return len(self._live)

    def all_pending(self) -> List[Message]:
        """All undelivered messages, in global send order."""
        return sorted(self._live.values(), key=lambda m: m.sequence)

    def find_pending(self, sequence: int) -> Optional[Message]:
        """The undelivered message with this sequence number, if any.

        Used by the verification layer's differential replayer, which
        re-issues a window-engine trace's deliveries on the step engine by
        sequence number.
        """
        return self._live.get(sequence)

    @property
    def sent_count(self) -> int:
        """Total messages ever submitted."""
        return self._sent_count

    @property
    def delivered_count(self) -> int:
        """Total messages ever delivered."""
        return self._delivered_count

    # ------------------------------------------------------------------
    # Delivery and loss.
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> Message:
        """Remove a specific pending message from the buffer.

        Raises:
            InvalidStepError: if the message is not pending (e.g. the
                adversary asked to deliver something that was never sent).
        """
        candidate = self._live.get(message.sequence)
        if candidate is None or candidate.receiver != message.receiver:
            raise InvalidStepError(
                f"message {message} is not pending delivery")
        del self._live[message.sequence]
        self._delivered_count += 1
        return candidate

    def take_window_deliveries(self, receiver: int,
                               senders: Set[int]) -> List[Message]:
        """Remove and return the freshest message from each allowed sender.

        Acceptable windows deliver, to each processor ``i``, *the messages
        just sent to it* by the senders in ``S_i``.  In the window engine
        each sender produces at most one message per destination per window,
        so this returns at most one message per allowed sender — the most
        recently sent one — leaving older undelivered messages in the buffer
        (they model the asynchrony the adversary may exploit later).
        """
        channels = self._channels.get(receiver)
        if not channels:
            return []
        live = self._live
        deliveries: List[Message] = []
        for sender in sorted(senders):
            queue = channels.get(sender)
            if not queue:
                continue
            # Trim ghosts so the rightmost entry is the newest live message.
            while queue and queue[-1].sequence not in live:
                queue.pop()
            if queue:
                message = queue.pop()
                del live[message.sequence]
                deliveries.append(message)
        self._delivered_count += len(deliveries)
        return deliveries

    def drop_channel(self, sender: Optional[int] = None,
                     receiver: Optional[int] = None) -> int:
        """Drop pending messages matching a sender and/or receiver filter.

        Used when a crash adversary declares that a crashed processor's
        in-flight messages are lost.  Returns the number of dropped messages.
        """
        if receiver is not None:
            receivers: Iterable[int] = (receiver,)
        else:
            receivers = list(self._channels)
        senders = None if sender is None else {sender}
        dropped = 0
        for dest in receivers:
            dropped += self._discard(self._live_matching(dest, senders))
            # The scanned channels are now entirely ghosts; reclaim them.
            channels = self._channels.get(dest)
            if channels:
                if sender is None:
                    channels.clear()
                else:
                    channels.pop(sender, None)
        return dropped

    def clear_stale_rounds(self, receiver: int, is_stale) -> int:
        """Drop pending messages for ``receiver`` whose payload is stale.

        Args:
            receiver: the destination whose queue is pruned.
            is_stale: predicate over payloads; messages whose payload the
                predicate accepts are discarded.

        Returns:
            Number of discarded messages.
        """
        return self._discard(list(self._live_matching(
            receiver, predicate=lambda m: is_stale(m.payload))))


__all__ = ["Network"]
