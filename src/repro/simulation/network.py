"""The message buffer connecting processors.

The network models the dedicated per-pair channels of the paper's model: a
sent message sits in the buffer until the adversary schedules its delivery.
The network never loses or duplicates messages on its own — all scheduling
power lives in the adversary.  It supports the operations the two execution
engines need:

* accepting a batch of messages from a sending step (stamping sequence
  numbers and message-chain depths);
* enumerating undelivered messages, optionally filtered by receiver and by a
  set of allowed senders (how acceptable windows express the sets ``S_i``);
* removing a message once delivered;
* dropping messages addressed to or sent by crashed processors, when the
  crash adversary decides they are lost.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.simulation.errors import InvalidStepError
from repro.simulation.message import Message


class Network:
    """A message buffer with adversary-controlled delivery.

    Attributes:
        n: number of processors attached to the network.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._sequence = 0
        # Undelivered messages, keyed by receiver for efficient window
        # delivery.  Within a channel we preserve send order.
        self._pending: Dict[int, List[Message]] = defaultdict(list)
        self._delivered_count = 0
        self._sent_count = 0

    # ------------------------------------------------------------------
    # Sending.
    # ------------------------------------------------------------------
    def submit(self, messages: Iterable[Message],
               chain_depth: int = 1) -> List[Message]:
        """Place messages into the buffer, stamping bookkeeping fields.

        Args:
            messages: messages produced by a sending step.
            chain_depth: message-chain depth to stamp on each message
                (``1 +`` the deepest chain the sender had received).

        Returns:
            The stamped copies actually stored in the buffer.
        """
        stored = []
        for message in messages:
            if not 0 <= message.receiver < self.n:
                raise InvalidStepError(
                    f"message addressed to unknown processor "
                    f"{message.receiver}")
            if not 0 <= message.sender < self.n:
                raise InvalidStepError(
                    f"message from unknown processor {message.sender}")
            stamped = message.with_sequence(self._sequence)
            stamped = stamped.with_chain_depth(chain_depth)
            self._sequence += 1
            self._sent_count += 1
            self._pending[message.receiver].append(stamped)
            stored.append(stamped)
        return stored

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------
    def pending_for(self, receiver: int,
                    senders: Optional[Set[int]] = None) -> List[Message]:
        """Undelivered messages addressed to ``receiver``.

        Args:
            receiver: the destination processor.
            senders: if given, only messages from these senders are listed.

        Returns:
            Messages in send order.
        """
        messages = self._pending.get(receiver, [])
        if senders is None:
            return list(messages)
        return [m for m in messages if m.sender in senders]

    def pending_count(self) -> int:
        """Total number of undelivered messages."""
        return sum(len(msgs) for msgs in self._pending.values())

    def all_pending(self) -> List[Message]:
        """All undelivered messages, in global send order."""
        messages = [m for msgs in self._pending.values() for m in msgs]
        return sorted(messages, key=lambda m: m.sequence)

    @property
    def sent_count(self) -> int:
        """Total messages ever submitted."""
        return self._sent_count

    @property
    def delivered_count(self) -> int:
        """Total messages ever delivered."""
        return self._delivered_count

    # ------------------------------------------------------------------
    # Delivery and loss.
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> Message:
        """Remove a specific pending message from the buffer.

        Raises:
            InvalidStepError: if the message is not pending (e.g. the
                adversary asked to deliver something that was never sent).
        """
        queue = self._pending.get(message.receiver, [])
        for index, candidate in enumerate(queue):
            if candidate.sequence == message.sequence:
                del queue[index]
                self._delivered_count += 1
                return candidate
        raise InvalidStepError(
            f"message {message} is not pending delivery")

    def take_window_deliveries(self, receiver: int,
                               senders: Set[int]) -> List[Message]:
        """Remove and return the freshest message from each allowed sender.

        Acceptable windows deliver, to each processor ``i``, *the messages
        just sent to it* by the senders in ``S_i``.  In the window engine
        each sender produces at most one message per destination per window,
        so this returns at most one message per allowed sender — the most
        recently sent one — leaving older undelivered messages in the buffer
        (they model the asynchrony the adversary may exploit later).
        """
        queue = self._pending.get(receiver, [])
        newest: Dict[int, Message] = {}
        for message in queue:
            if message.sender in senders:
                current = newest.get(message.sender)
                if current is None or message.sequence > current.sequence:
                    newest[message.sender] = message
        deliveries = sorted(newest.values(), key=lambda m: m.sender)
        for message in deliveries:
            self.deliver(message)
        return deliveries

    def drop_channel(self, sender: Optional[int] = None,
                     receiver: Optional[int] = None) -> int:
        """Drop pending messages matching a sender and/or receiver filter.

        Used when a crash adversary declares that a crashed processor's
        in-flight messages are lost.  Returns the number of dropped messages.
        """
        dropped = 0
        for dest, queue in self._pending.items():
            if receiver is not None and dest != receiver:
                continue
            keep = []
            for message in queue:
                if sender is None or message.sender == sender:
                    dropped += 1
                else:
                    keep.append(message)
            self._pending[dest] = keep
        return dropped

    def clear_stale_rounds(self, receiver: int, is_stale) -> int:
        """Drop pending messages for ``receiver`` whose payload is stale.

        Args:
            receiver: the destination whose queue is pruned.
            is_stale: predicate over payloads; messages whose payload the
                predicate accepts are discarded.

        Returns:
            Number of discarded messages.
        """
        queue = self._pending.get(receiver, [])
        keep = [m for m in queue if not is_stale(m.payload)]
        dropped = len(queue) - len(keep)
        self._pending[receiver] = keep
        return dropped


__all__ = ["Network"]
