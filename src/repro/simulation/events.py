"""Step and event types for step-level (fully asynchronous) executions.

The window engine (``repro.simulation.windows``) drives executions one
acceptable window at a time, which is the natural granularity for the
strongly adaptive adversary.  The step engine (``repro.simulation.engine``)
instead exposes the paper's fine-grained step types directly — sending,
receiving, resetting — plus crash and Byzantine corruption events needed for
the classical adversaries of Sections 1 and 5.  This module defines the step
vocabulary shared by the step engine and its adversaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.simulation.message import Message


class StepType(enum.Enum):
    """The kinds of steps a step-level adversary can schedule."""

    SEND = "send"
    """A processor takes a sending step (places messages in the buffer)."""

    RECEIVE = "receive"
    """A specific pending message is delivered to its recipient."""

    RESET = "reset"
    """A processor suffers a resetting failure (memory erased)."""

    CRASH = "crash"
    """A processor suffers a crash failure (stops forever)."""


@dataclass(frozen=True)
class Step:
    """A single scheduled step.

    Attributes:
        step_type: which of the model's step kinds this is.
        pid: the processor acted upon (the sender for SEND, the recipient
            for RECEIVE, the victim for RESET/CRASH).
        message: for RECEIVE steps, the pending message to deliver.
        corrupted_payload: for RECEIVE steps scheduled by a Byzantine
            adversary, an optional replacement payload; ``None`` means the
            message is delivered unmodified.
    """

    step_type: StepType
    pid: int
    message: Optional[Message] = None
    corrupted_payload: Any = None

    @staticmethod
    def send(pid: int) -> "Step":
        """A sending step by processor ``pid``."""
        return Step(StepType.SEND, pid)

    @staticmethod
    def receive(message: Message, corrupted_payload: Any = None) -> "Step":
        """Delivery of ``message`` (optionally with a corrupted payload)."""
        return Step(StepType.RECEIVE, message.receiver, message=message,
                    corrupted_payload=corrupted_payload)

    @staticmethod
    def reset(pid: int) -> "Step":
        """A resetting failure at processor ``pid``."""
        return Step(StepType.RESET, pid)

    @staticmethod
    def crash(pid: int) -> "Step":
        """A crash failure at processor ``pid``."""
        return Step(StepType.CRASH, pid)


@dataclass
class StepRecord:
    """A step together with its position in the execution, for traces."""

    index: int
    step: Step
    decided_after: bool = False


__all__ = ["StepType", "Step", "StepRecord"]
