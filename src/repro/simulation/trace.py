"""Execution results and traces.

Both execution engines produce an :class:`ExecutionResult` summarising the
quantities the paper's theorems talk about: whether agreement and validity
held in every reachable configuration along the way, when the first decision
happened (in acceptable windows for the strongly adaptive model, in
message-chain length for the crash model), and how much communication was
used.

When asked (``record_trace=True``), the engines additionally record an
:class:`ExecutionTrace`: a flat, ordered log of every send, delivery, reset,
crash and decision, plus — for the window engine — the
:class:`~repro.simulation.windows.WindowSpec` of every executed window.
The trace is the evidence the verification layer
(:mod:`repro.verification`) replays: the
:class:`~repro.verification.invariants.InvariantChecker` re-derives the
paper's trace-level invariants from it without trusting the engines' own
summary flags, and the differential replayer re-executes it on the other
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, List, Optional, Sequence,
                    Set, Tuple)

from repro.simulation.configuration import Configuration

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.simulation.message import Message
    from repro.simulation.windows import WindowSpec


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event of an execution.

    Attributes:
        kind: ``"send"``, ``"deliver"``, ``"reset"``, ``"crash"`` or
            ``"decide"``.
        pid: the acting processor — the sender of a sending step, the
            receiver of a delivery, the victim of a reset/crash, the
            decider of a decision.
        window: 0-based index of the acceptable window the event belongs
            to (``None`` for step-engine events).
        value: for ``"decide"``, the decided bit.
        sequence: for ``"deliver"``, the delivered message's network
            sequence number.
        sender: for ``"deliver"``, the delivered message's sender.
        sequences: for ``"send"``, the sequence numbers stamped on the
            submitted messages (empty when the sending step sent nothing).
        corrupted: for ``"deliver"``, whether an adversary replaced the
            payload before it reached the receiver.
        lost: for ``"deliver"``, whether the message was removed from the
            buffer but never processed (delivery to a crashed processor).
    """

    kind: str
    pid: int
    window: Optional[int] = None
    value: Optional[int] = None
    sequence: Optional[int] = None
    sender: Optional[int] = None
    sequences: Tuple[int, ...] = ()
    corrupted: bool = False
    lost: bool = False


@dataclass
class ExecutionTrace:
    """The full event log of one execution, engine-independent evidence.

    Attributes:
        engine: ``"window"`` or ``"step"`` — which engine produced it.
        n: number of processors.
        t: fault bound the execution was run under.
        inputs: the initial input bits.
        seed: the engine's master randomness seed.
        crash_budget: the step engine's crash cap (``None`` elsewhere).
        reset_budget: the step engine's reset cap (``None`` = unlimited).
        events: every recorded event, in execution order.
        windows: for the window engine, the executed window specifications
            in order; ``windows[w]`` is the spec behind every event with
            ``window == w``.
    """

    engine: str
    n: int
    t: int
    inputs: Tuple[int, ...]
    seed: Optional[int] = None
    crash_budget: Optional[int] = None
    reset_budget: Optional[int] = None
    events: List[TraceEvent] = field(default_factory=list)
    windows: List["WindowSpec"] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording (called by the engines).
    # ------------------------------------------------------------------
    def record_window(self, spec: "WindowSpec") -> None:
        """Append the specification of the window about to execute."""
        self.windows.append(spec)

    def record_send(self, pid: int, messages: Sequence["Message"],
                    window: Optional[int] = None) -> None:
        """Record a sending step and the sequences it submitted."""
        self.events.append(TraceEvent(
            kind="send", pid=pid, window=window,
            sequences=tuple(message.sequence for message in messages)))

    def record_deliver(self, message: "Message",
                       window: Optional[int] = None,
                       corrupted: bool = False, lost: bool = False) -> None:
        """Record the delivery (or crash-loss) of a buffered message."""
        self.events.append(TraceEvent(
            kind="deliver", pid=message.receiver, window=window,
            sequence=message.sequence, sender=message.sender,
            corrupted=corrupted, lost=lost))

    def record_reset(self, pid: int, window: Optional[int] = None) -> None:
        """Record a resetting failure."""
        self.events.append(TraceEvent(kind="reset", pid=pid, window=window))

    def record_crash(self, pid: int, window: Optional[int] = None) -> None:
        """Record a crash failure."""
        self.events.append(TraceEvent(kind="crash", pid=pid, window=window))

    def record_decide(self, pid: int, value: Optional[int],
                      window: Optional[int] = None) -> None:
        """Record a processor writing its output bit."""
        self.events.append(TraceEvent(kind="decide", pid=pid, value=value,
                                      window=window))

    # ------------------------------------------------------------------
    # Inspection (used by the invariant checker and tests).
    # ------------------------------------------------------------------
    def events_of(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in execution order."""
        return [event for event in self.events if event.kind == kind]

    def decisions(self) -> List[Tuple[int, Optional[int]]]:
        """(pid, value) pairs of every decision event, in order."""
        return [(event.pid, event.value) for event in self.events
                if event.kind == "decide"]

    def crashed_pids(self) -> Set[int]:
        """Identities of processors that suffered a crash event."""
        return {event.pid for event in self.events if event.kind == "crash"}

    def deliveries_by_window(self) -> List[List[TraceEvent]]:
        """Delivery events grouped by window index, in recorded order.

        Only meaningful for window-engine traces; the differential
        replayer uses this to re-issue the same deliveries step by step.
        """
        grouped: List[List[TraceEvent]] = [[] for _ in self.windows]
        for event in self.events:
            if event.kind == "deliver" and event.window is not None:
                grouped[event.window].append(event)
        return grouped


@dataclass
class ExecutionResult:
    """Summary of a single simulated execution.

    Attributes:
        n: number of processors.
        t: fault bound used by the adversary/protocol.
        inputs: the initial input bits.
        outputs: the final output bits (``None`` for undecided processors).
        crashed: identities of processors that crashed during the execution.
        windows_elapsed: number of acceptable windows executed (window
            engine) or rounds of the round-structured crash schedule.
        steps_elapsed: number of fine-grained steps executed (step engine).
        first_decision_window: index (1-based) of the window in which the
            first processor decided, or ``None`` if no decision occurred.
        first_decision_step: step index of the first decision (step engine).
        message_chain_length: longest message chain received by any
            processor before it decided — the running-time measure used for
            the crash-failure lower bound (Theorem 17).
        messages_sent: total messages submitted to the network.
        messages_delivered: total messages delivered.
        total_resets: number of resetting failures applied.
        total_coin_flips: total local coin flips across all processors.
        agreement_violated: True if two processors ever decided
            conflicting values (breaks Definition 2).
        validity_violated: True if some decided value matched no input.
        configurations: optional per-window configuration snapshots, when
            the engine was asked to record them.
        trace: the full event log, when the engine was asked to record it
            (``record_trace=True``); consumed by :mod:`repro.verification`.
    """

    n: int
    t: int
    inputs: Tuple[int, ...]
    outputs: Tuple[Optional[int], ...]
    crashed: Tuple[int, ...] = ()
    windows_elapsed: int = 0
    steps_elapsed: int = 0
    first_decision_window: Optional[int] = None
    first_decision_step: Optional[int] = None
    message_chain_length: Optional[int] = None
    messages_sent: int = 0
    messages_delivered: int = 0
    total_resets: int = 0
    total_coin_flips: int = 0
    agreement_violated: bool = False
    validity_violated: bool = False
    configurations: List[Configuration] = field(default_factory=list)
    trace: Optional[ExecutionTrace] = None

    # ------------------------------------------------------------------
    # Derived predicates.
    # ------------------------------------------------------------------
    @property
    def decided(self) -> bool:
        """Whether at least one processor decided."""
        return any(output is not None for output in self.outputs)

    @property
    def decision_values(self) -> Set[int]:
        """The set of decided values."""
        return {output for output in self.outputs if output is not None}

    @property
    def all_live_decided(self) -> bool:
        """Whether every non-crashed processor decided."""
        crashed = set(self.crashed)
        return all(output is not None
                   for pid, output in enumerate(self.outputs)
                   if pid not in crashed)

    @property
    def agreement_ok(self) -> bool:
        """Safety: no two processors decided conflicting values."""
        return not self.agreement_violated and len(self.decision_values) <= 1

    @property
    def validity_ok(self) -> bool:
        """Validity: every decided value equals some processor's input."""
        if self.validity_violated:
            return False
        return self.decision_values.issubset(set(self.inputs))

    @property
    def correct(self) -> bool:
        """Agreement and validity both hold (Definition 2)."""
        return self.agreement_ok and self.validity_ok

    def running_time_windows(self) -> Optional[int]:
        """Running time in acceptable windows until the first decision.

        This is the running-time measure used for the strongly adaptive
        adversary (Section 2): the number of acceptable windows that pass
        before the first processor decides.
        """
        return self.first_decision_window

    def summary(self) -> dict:
        """A flat dictionary convenient for building experiment tables."""
        return {
            "n": self.n,
            "t": self.t,
            "decided": self.decided,
            "decision_values": sorted(self.decision_values),
            "windows": self.windows_elapsed,
            "first_decision_window": self.first_decision_window,
            "message_chain_length": self.message_chain_length,
            "messages_sent": self.messages_sent,
            "total_resets": self.total_resets,
            "coin_flips": self.total_coin_flips,
            "agreement_ok": self.agreement_ok,
            "validity_ok": self.validity_ok,
        }


__all__ = ["ExecutionResult", "ExecutionTrace", "TraceEvent"]
