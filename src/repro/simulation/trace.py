"""Execution results and traces.

Both execution engines produce an :class:`ExecutionResult` summarising the
quantities the paper's theorems talk about: whether agreement and validity
held in every reachable configuration along the way, when the first decision
happened (in acceptable windows for the strongly adaptive model, in
message-chain length for the crash model), and how much communication was
used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.simulation.configuration import Configuration


@dataclass
class ExecutionResult:
    """Summary of a single simulated execution.

    Attributes:
        n: number of processors.
        t: fault bound used by the adversary/protocol.
        inputs: the initial input bits.
        outputs: the final output bits (``None`` for undecided processors).
        crashed: identities of processors that crashed during the execution.
        windows_elapsed: number of acceptable windows executed (window
            engine) or rounds of the round-structured crash schedule.
        steps_elapsed: number of fine-grained steps executed (step engine).
        first_decision_window: index (1-based) of the window in which the
            first processor decided, or ``None`` if no decision occurred.
        first_decision_step: step index of the first decision (step engine).
        message_chain_length: longest message chain received by any
            processor before it decided — the running-time measure used for
            the crash-failure lower bound (Theorem 17).
        messages_sent: total messages submitted to the network.
        messages_delivered: total messages delivered.
        total_resets: number of resetting failures applied.
        total_coin_flips: total local coin flips across all processors.
        agreement_violated: True if two processors ever decided
            conflicting values (breaks Definition 2).
        validity_violated: True if some decided value matched no input.
        configurations: optional per-window configuration snapshots, when
            the engine was asked to record them.
    """

    n: int
    t: int
    inputs: Tuple[int, ...]
    outputs: Tuple[Optional[int], ...]
    crashed: Tuple[int, ...] = ()
    windows_elapsed: int = 0
    steps_elapsed: int = 0
    first_decision_window: Optional[int] = None
    first_decision_step: Optional[int] = None
    message_chain_length: Optional[int] = None
    messages_sent: int = 0
    messages_delivered: int = 0
    total_resets: int = 0
    total_coin_flips: int = 0
    agreement_violated: bool = False
    validity_violated: bool = False
    configurations: List[Configuration] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived predicates.
    # ------------------------------------------------------------------
    @property
    def decided(self) -> bool:
        """Whether at least one processor decided."""
        return any(output is not None for output in self.outputs)

    @property
    def decision_values(self) -> Set[int]:
        """The set of decided values."""
        return {output for output in self.outputs if output is not None}

    @property
    def all_live_decided(self) -> bool:
        """Whether every non-crashed processor decided."""
        crashed = set(self.crashed)
        return all(output is not None
                   for pid, output in enumerate(self.outputs)
                   if pid not in crashed)

    @property
    def agreement_ok(self) -> bool:
        """Safety: no two processors decided conflicting values."""
        return not self.agreement_violated and len(self.decision_values) <= 1

    @property
    def validity_ok(self) -> bool:
        """Validity: every decided value equals some processor's input."""
        if self.validity_violated:
            return False
        return self.decision_values.issubset(set(self.inputs))

    @property
    def correct(self) -> bool:
        """Agreement and validity both hold (Definition 2)."""
        return self.agreement_ok and self.validity_ok

    def running_time_windows(self) -> Optional[int]:
        """Running time in acceptable windows until the first decision.

        This is the running-time measure used for the strongly adaptive
        adversary (Section 2): the number of acceptable windows that pass
        before the first processor decides.
        """
        return self.first_decision_window

    def summary(self) -> dict:
        """A flat dictionary convenient for building experiment tables."""
        return {
            "n": self.n,
            "t": self.t,
            "decided": self.decided,
            "decision_values": sorted(self.decision_values),
            "windows": self.windows_elapsed,
            "first_decision_window": self.first_decision_window,
            "message_chain_length": self.message_chain_length,
            "messages_sent": self.messages_sent,
            "total_resets": self.total_resets,
            "coin_flips": self.total_coin_flips,
            "agreement_ok": self.agreement_ok,
            "validity_ok": self.validity_ok,
        }


__all__ = ["ExecutionResult"]
