"""Message primitives for the asynchronous message-passing model.

The paper (Section 2) works in a complete network of ``n`` processors where
every pair of processors is connected by a dedicated message channel, so the
recipient of a message always correctly identifies the sender.  A message is
therefore a triple (sender, receiver, contents); we additionally stamp each
message with a monotonically increasing sequence number when it enters the
network, which is used for deterministic replay and for message-chain
accounting (Section 5 measures running time by message-chain length).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Tuple


@dataclass(frozen=True, slots=True)
class Message:
    """A single message travelling on a dedicated sender->receiver channel.

    Attributes:
        sender: identity of the sending processor (``0 <= sender < n``).
        receiver: identity of the receiving processor (``0 <= receiver < n``).
        payload: the message contents.  Protocols use small immutable tuples
            such as ``("VOTE", round, bit)`` so that configurations remain
            hashable and comparable.
        sequence: network-assigned sequence number (``-1`` until the message
            is handed to a :class:`~repro.simulation.network.Network`).
        chain_depth: length of the longest message chain ending at this
            message, i.e. ``1 +`` the depth of the deepest message the sender
            had received before sending.  Used for Theorem 17 experiments.
    """

    sender: int
    receiver: int
    payload: Any
    sequence: int = -1
    chain_depth: int = 1

    def with_sequence(self, sequence: int) -> "Message":
        """Return a copy stamped with the given network sequence number."""
        return replace(self, sequence=sequence)

    def with_chain_depth(self, chain_depth: int) -> "Message":
        """Return a copy carrying the given message-chain depth."""
        return replace(self, chain_depth=chain_depth)

    def stamp_in_place(self, sequence: int, chain_depth: int) -> None:
        """Set both bookkeeping fields without allocating a copy.

        Messages follow a mutable-until-submitted convention: a freshly
        composed message is owned exclusively by its sender until it is
        handed to :meth:`~repro.simulation.network.Network.submit`, which
        stamps it in place (one message object per send instead of three)
        and freezes it by publication.  Code holding a message obtained from
        the network must treat it as immutable, as before.
        """
        _set = object.__setattr__
        _set(self, "sequence", sequence)
        _set(self, "chain_depth", chain_depth)

    def corrupted(self, payload: Any) -> "Message":
        """Return a copy whose payload has been replaced by an adversary.

        Used by Byzantine adversaries, which may arbitrarily rewrite the
        contents of messages sent by corrupted processors (the channel
        still truthfully reports the sender identity).
        """
        return replace(self, payload=payload)

    def key(self) -> Tuple[int, int, Any]:
        """A channel-level identity ignoring sequence/chain bookkeeping."""
        return (self.sender, self.receiver, self.payload)


def broadcast(sender: int, n: int, payload: Any,
              include_self: bool = True) -> list:
    """Build the list of messages a processor sends when broadcasting.

    Args:
        sender: the broadcasting processor's identity.
        n: total number of processors.
        payload: the common payload to send to every destination.
        include_self: whether to include a self-addressed copy.  The paper
            notes that self-delivery is superfluous in the acceptable-window
            model (state can be kept locally), but the classic Ben-Or and
            Bracha protocols count the processor's own message toward their
            thresholds, so the default includes it.

    Returns:
        A list of :class:`Message` objects, one per destination.
    """
    return [
        Message(sender=sender, receiver=receiver, payload=payload)
        for receiver in range(n)
        if include_self or receiver != sender
    ]


__all__ = ["Message", "broadcast"]
