"""Configurations: joint snapshots of the n processor states.

The lower-bound proofs of Sections 4 and 5 reason about sets of reachable
configurations in the joint state space ``Sigma^n`` and about the Hamming
distance between configurations (the number of coordinates — processors —
whose local state differs).  This module provides the concrete configuration
snapshot type, Hamming distance helpers, and predicates for the base decision
sets ``Z_0^0`` and ``Z_1^0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.simulation.errors import ConfigurationMismatchError


@dataclass(frozen=True, slots=True)
class Configuration:
    """An immutable snapshot of the joint state of ``n`` processors.

    Attributes:
        states: per-processor state fingerprints, as produced by
            :meth:`repro.protocols.base.Protocol.state_fingerprint`.  Each
            fingerprint is ``(input_bit, output_bit, reset_count, volatile)``.
    """

    states: Tuple[Tuple, ...]

    @property
    def n(self) -> int:
        """Number of processors in the configuration."""
        return len(self.states)

    # ------------------------------------------------------------------
    # Decision structure.
    # ------------------------------------------------------------------
    def outputs(self) -> Tuple[Optional[int], ...]:
        """The output bit of every processor (``None`` when undecided)."""
        return tuple(state[1] for state in self.states)

    def inputs(self) -> Tuple[int, ...]:
        """The input bit of every processor."""
        return tuple(state[0] for state in self.states)

    def decided_values(self) -> set:
        """The set of non-``None`` output values present."""
        return {output for output in self.outputs() if output is not None}

    def has_decision(self, value: Optional[int] = None) -> bool:
        """Whether some processor has decided (optionally a specific value)."""
        decided = self.decided_values()
        if value is None:
            return bool(decided)
        return value in decided

    def is_agreeing(self) -> bool:
        """True when no two processors have decided conflicting values.

        This is the safety predicate of measure-one correctness
        (Definition 2): any mixture of a single value and undecided markers
        is fine; both 0 and 1 appearing among outputs is a violation.
        """
        return len(self.decided_values()) <= 1

    def is_valid(self) -> bool:
        """True when every decided value equals some processor's input.

        Together with :meth:`is_agreeing`, this captures Definition 2:
        unanimous inputs force the unanimous value.
        """
        decided = self.decided_values()
        if not decided:
            return True
        inputs = set(self.inputs())
        return decided.issubset(inputs)

    def all_decided(self) -> bool:
        """Whether every processor has written its output bit."""
        return all(output is not None for output in self.outputs())

    # ------------------------------------------------------------------
    # Hamming geometry.
    # ------------------------------------------------------------------
    def hamming_distance(self, other: "Configuration") -> int:
        """Number of processors whose local state differs from ``other``."""
        if self.n != other.n:
            raise ConfigurationMismatchError(
                f"cannot compare configurations of sizes {self.n} and "
                f"{other.n}")
        return sum(1 for a, b in zip(self.states, other.states) if a != b)

    def differing_coordinates(self, other: "Configuration") -> List[int]:
        """Indices of the processors whose state differs from ``other``."""
        if self.n != other.n:
            raise ConfigurationMismatchError(
                f"cannot compare configurations of sizes {self.n} and "
                f"{other.n}")
        return [i for i, (a, b) in enumerate(zip(self.states, other.states))
                if a != b]

    def __len__(self) -> int:
        return len(self.states)


def hamming_distance(a: Configuration, b: Configuration) -> int:
    """Module-level alias for :meth:`Configuration.hamming_distance`."""
    return a.hamming_distance(b)


def set_distance(set_a: Iterable[Configuration],
                 set_b: Iterable[Configuration]) -> Optional[int]:
    """Minimum Hamming distance between two sets of configurations.

    This is the quantity ``Delta(A, B)`` of Definition 7.  Returns ``None``
    when either set is empty (the distance is undefined / infinite).
    """
    list_a = list(set_a)
    list_b = list(set_b)
    if not list_a or not list_b:
        return None
    return min(a.hamming_distance(b) for a in list_a for b in list_b)


def point_to_set_distance(point: Configuration,
                          configurations: Iterable[Configuration]
                          ) -> Optional[int]:
    """Minimum Hamming distance from a configuration to a set (Definition 6)."""
    distances = [point.hamming_distance(other) for other in configurations]
    if not distances:
        return None
    return min(distances)


def hamming_ball(point: Configuration,
                 configurations: Iterable[Configuration],
                 radius: int) -> List[Configuration]:
    """Members of ``configurations`` within the given radius of ``point``.

    Mirrors the set ``B(A, d)`` of Definition 8 (with the roles of the point
    and the set swappable via repeated calls).
    """
    return [other for other in configurations
            if point.hamming_distance(other) <= radius]


def decided_zero(configuration: Configuration) -> bool:
    """Membership predicate for the base set ``Z_0^0`` (Definition 10)."""
    return configuration.has_decision(0)


def decided_one(configuration: Configuration) -> bool:
    """Membership predicate for the base set ``Z_1^0`` (Definition 10)."""
    return configuration.has_decision(1)


__all__ = [
    "Configuration",
    "hamming_distance",
    "set_distance",
    "point_to_set_distance",
    "hamming_ball",
    "decided_zero",
    "decided_one",
]
