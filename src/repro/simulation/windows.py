"""Acceptable windows and the window-structured execution engine.

Definition 1 of the paper: an *acceptable window* is a consecutive segment of
steps in which (1) all ``n`` processors take sending steps, (2) each
processor ``i`` receives the messages just sent to it by a set ``S_i`` of at
least ``n - t`` senders, and (3) at most ``t`` resetting steps occur.  The
strongly adaptive adversary must structure every infinite execution as a
concatenation of acceptable windows; the number of windows before the first
decision is the running-time measure of Theorems 4 and 5.

The :class:`WindowEngine` executes a protocol one acceptable window at a
time, with the window contents (the sets ``R, S_1, ..., S_n`` plus, for the
crash-model experiments, a crash set) chosen by a window adversary.  Because
the window structure is itself the model, this engine is an exact — not
approximate — realisation of the paper's execution model.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import (TYPE_CHECKING, FrozenSet, List, Optional,
                    Sequence, Tuple)

from repro.simulation.configuration import Configuration
from repro.simulation.errors import (AdversaryBudgetError, InvalidWindowError)
from repro.simulation.network import Network
from repro.simulation.processor import Processor
from repro.simulation.trace import ExecutionResult, ExecutionTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.protocols.base import ProtocolFactory


@dataclass(frozen=True)
class WindowSpec:
    """The adversary's choices for one acceptable window.

    Attributes:
        senders_for: for each processor ``i``, the set ``S_i`` of senders
            whose freshly sent messages are delivered to ``i`` this window.
            Each set must have size at least ``n - t`` (Definition 1).
        resets: the set ``R`` of processors reset at the end of the window,
            of size at most ``t``.
        crashes: processors crashed at the start of the window.  Not part of
            Definition 1 (the strongly adaptive adversary uses resets, not
            crashes); used when the same engine drives the crash-failure
            experiments of Section 5, where the cumulative number of crashes
            is bounded by ``t``.
        deliver_last: senders whose messages are delivered *after* everyone
            else's within the window.  Definition 1 lets the adversary pick
            the order of the receiving steps; since the protocols act as
            soon as their waiting threshold (``T1`` or ``n - t``) is
            reached, pushing selected senders to the back of the delivery
            order effectively hides their votes from that decision without
            violating the delivery requirement.  Empty by default (delivery
            in sender order).
    """

    senders_for: Tuple[FrozenSet[int], ...]
    resets: FrozenSet[int] = frozenset()
    crashes: FrozenSet[int] = frozenset()
    deliver_last: FrozenSet[int] = frozenset()

    @staticmethod
    def full_delivery(n: int) -> "WindowSpec":
        """The fault-free window: everyone hears everyone, nobody is reset."""
        everyone = frozenset(range(n))
        return WindowSpec(senders_for=tuple(everyone for _ in range(n)))

    def to_jsonable(self) -> dict:
        """A plain-JSON encoding of this window specification.

        The encoding is the schedule-artifact format shared by the fuzz
        counterexamples (:mod:`repro.verification.shrink`), the search
        best-schedule artifacts (:mod:`repro.search`) and the
        ``replay-schedule`` adversary's picklable constructor kwargs.
        """
        return {
            "senders_for": [sorted(senders) for senders in self.senders_for],
            "resets": sorted(self.resets),
            "crashes": sorted(self.crashes),
            "deliver_last": sorted(self.deliver_last),
        }

    @staticmethod
    def from_jsonable(data: dict) -> "WindowSpec":
        """Rebuild a window specification from its JSON encoding."""
        return WindowSpec(
            senders_for=tuple(frozenset(senders)
                              for senders in data["senders_for"]),
            resets=frozenset(data.get("resets", ())),
            crashes=frozenset(data.get("crashes", ())),
            deliver_last=frozenset(data.get("deliver_last", ())))

    @staticmethod
    def uniform(n: int, senders: FrozenSet[int],
                resets: FrozenSet[int] = frozenset(),
                crashes: FrozenSet[int] = frozenset(),
                deliver_last: FrozenSet[int] = frozenset()) -> "WindowSpec":
        """A window where every processor hears from the same sender set."""
        return WindowSpec(senders_for=tuple(senders for _ in range(n)),
                          resets=resets, crashes=crashes,
                          deliver_last=deliver_last)

    def validate(self, n: int, t: int) -> None:
        """Check the Definition 1 constraints, raising on violation."""
        if len(self.senders_for) != n:
            raise InvalidWindowError(
                f"window specifies sender sets for {len(self.senders_for)} "
                f"processors, expected {n}")
        everyone = frozenset(range(n))
        minimum = n - t
        for pid, senders in enumerate(self.senders_for):
            if len(senders) < minimum:
                raise InvalidWindowError(
                    f"sender set for processor {pid} has size "
                    f"{len(senders)} < n - t = {minimum}")
            if not senders <= everyone:
                raise InvalidWindowError(
                    f"sender set for processor {pid} contains identities "
                    f"outside [0, {n})")
        if len(self.resets) > t:
            raise InvalidWindowError(
                f"window resets {len(self.resets)} > t = {t} processors")
        if not self.resets <= everyone:
            raise InvalidWindowError("reset set contains invalid identities")
        if not self.crashes <= everyone:
            raise InvalidWindowError("crash set contains invalid identities")
        if not self.deliver_last <= everyone:
            raise InvalidWindowError(
                "deliver_last contains invalid identities")


class WindowAdversary:
    """Interface for adversaries driving the window engine.

    A window adversary is a full-information adversary: it is handed the
    engine itself and may inspect every processor's state and every pending
    message before choosing the next window.  Subclasses override
    :meth:`next_window`.
    """

    def bind(self, engine: "WindowEngine") -> None:
        """Called once before the execution starts."""

    def next_window(self, engine: "WindowEngine") -> WindowSpec:
        """Return the specification of the next acceptable window."""
        raise NotImplementedError

    def choose_inputs(self, n: int, rng: random.Random) -> Optional[List[int]]:
        """Optionally let the adversary pick the initial input bits.

        The lower bound (Theorem 5) quantifies over input settings as well
        as schedules, so adversaries that implement the input-interpolation
        argument override this.  Returning ``None`` keeps the caller's
        inputs.
        """
        return None


class WindowEngine:
    """Executes a protocol window by window under a window adversary."""

    def __init__(self, factory: "ProtocolFactory", inputs: Sequence[int],
                 seed: Optional[int] = None,
                 record_configurations: bool = False,
                 record_trace: bool = False) -> None:
        """Build the engine.

        Args:
            factory: builds the per-processor protocol instances.
            inputs: the ``n`` initial input bits.
            seed: master seed for all processor randomness.
            record_configurations: keep a per-window configuration snapshot
                (needed by the lower-bound machinery, off by default to keep
                long executions cheap).
            record_trace: keep a full :class:`ExecutionTrace` — every
                window specification, send, delivery, reset, crash and
                decision — for the verification layer (off by default).
        """
        self.factory = factory
        self.n = factory.n
        self.t = factory.t
        self.inputs = tuple(inputs)
        self.seed = seed
        self.record_configurations = record_configurations
        self.trace: Optional[ExecutionTrace] = None
        if record_trace:
            self.trace = ExecutionTrace(engine="window", n=self.n, t=self.t,
                                        inputs=self.inputs, seed=seed)
        self.network = Network(self.n)
        protocols = factory.build(list(inputs), seed=seed)
        self.processors: List[Processor] = [Processor(p) for p in protocols]
        self.window_index = 0
        self.total_resets = 0
        self.total_crashes = 0
        self._first_decision_window: Optional[int] = None
        self._configurations: List[Configuration] = []
        if record_configurations:
            self._configurations.append(self.configuration())

    # ------------------------------------------------------------------
    # Inspection (what a full-information adversary can see).
    # ------------------------------------------------------------------
    def configuration(self) -> Configuration:
        """Snapshot the joint processor state."""
        return Configuration(states=tuple(
            proc.state_fingerprint() for proc in self.processors))

    def live_processors(self) -> List[int]:
        """Identities of processors that have not crashed."""
        return [proc.pid for proc in self.processors if not proc.crashed]

    def crashed_processors(self) -> List[int]:
        """Identities of crashed processors."""
        return [proc.pid for proc in self.processors if proc.crashed]

    def current_estimates(self) -> List[Optional[int]]:
        """Each processor's current estimate, as exposed by the protocol."""
        return [proc.protocol.current_estimate() for proc in self.processors]

    def outputs(self) -> Tuple[Optional[int], ...]:
        """Current output bits."""
        return tuple(proc.output for proc in self.processors)

    def any_decided(self) -> bool:
        """Whether some processor has decided."""
        return any(proc.decided for proc in self.processors)

    def all_live_decided(self) -> bool:
        """Whether every non-crashed processor has decided."""
        return all(proc.decided for proc in self.processors
                   if not proc.crashed)

    @property
    def configurations(self) -> List[Configuration]:
        """Recorded per-window configurations (if recording was enabled)."""
        return list(self._configurations)

    # ------------------------------------------------------------------
    # Cloning (used by lookahead adversaries and the lower-bound
    # machinery, which must explore alternative continuations of the same
    # partial execution).
    # ------------------------------------------------------------------
    def clone(self) -> "WindowEngine":
        """A deep copy of the engine, sharing no mutable state."""
        return copy.deepcopy(self)

    def reseed(self, seed: int) -> None:
        """Replace every processor's randomness stream.

        Cloned engines carry cloned random-number generators, which would
        make repeated Monte-Carlo continuations identical; reseeding with
        distinct values restores independent local randomness, matching the
        model's assumption that each processor's source is fresh and
        independent.
        """
        master = random.Random(seed)
        for proc in self.processors:
            proc.protocol.rng.seed(master.getrandbits(64))

    # ------------------------------------------------------------------
    # Window execution.
    # ------------------------------------------------------------------
    def run_window(self, spec: WindowSpec) -> Configuration:
        """Execute one acceptable window and return the new configuration.

        The window proceeds exactly as Definition 1 prescribes: crashes
        (when used in the crash model) take effect first, then all live
        processors take sending steps, then each processor receives the
        freshly sent messages from its sender set, and finally the reset
        steps are applied.
        """
        spec.validate(self.n, self.t)
        trace = self.trace
        window = self.window_index
        outputs_before: Optional[Tuple[Optional[int], ...]] = None
        if trace is not None:
            trace.record_window(spec)
            outputs_before = self.outputs()
        self._apply_crashes(spec.crashes)

        # Phase 1: sending steps for all (live) processors.
        for proc in self.processors:
            if proc.crashed:
                continue
            messages = proc.send_step()
            if messages:
                messages = self.network.submit(
                    messages, chain_depth=proc.outgoing_chain_depth)
            if trace is not None:
                trace.record_send(proc.pid, messages, window=window)

        # Phase 2: receiving steps.  The adversary controls the order of
        # receiving steps within the window; deprioritised senders are
        # delivered last.
        deliver_last = spec.deliver_last
        for proc in self.processors:
            if proc.crashed:
                continue
            deliveries = self.network.take_window_deliveries(
                proc.pid, spec.senders_for[proc.pid])
            if deliver_last:
                # Stable partition: deliveries arrive sorted by sender, so
                # this equals sorting by (sender in deliver_last, sender)
                # without the per-message key calls.
                deliveries = (
                    [m for m in deliveries if m.sender not in deliver_last]
                    + [m for m in deliveries if m.sender in deliver_last])
            for message in deliveries:
                if trace is not None:
                    trace.record_deliver(message, window=window)
                proc.receive_step(message)

        # Phase 3: resetting steps.
        for pid in sorted(spec.resets):
            proc = self.processors[pid]
            if not proc.crashed:
                proc.reset()
                self.total_resets += 1
                if trace is not None:
                    trace.record_reset(pid, window=window)

        if trace is not None and outputs_before is not None:
            for pid, output in enumerate(self.outputs()):
                if output is not None and outputs_before[pid] != output:
                    trace.record_decide(pid, output, window=window)

        self.window_index += 1
        if self._first_decision_window is None and self.any_decided():
            self._first_decision_window = self.window_index
        configuration = self.configuration()
        if self.record_configurations:
            self._configurations.append(configuration)
        return configuration

    def _apply_crashes(self, crashes: FrozenSet[int]) -> None:
        for pid in sorted(crashes):
            proc = self.processors[pid]
            if not proc.crashed:
                proc.crash()
                self.total_crashes += 1
                if self.trace is not None:
                    self.trace.record_crash(pid, window=self.window_index)
        if self.total_crashes > self.t:
            raise AdversaryBudgetError(
                f"adversary crashed {self.total_crashes} > t = {self.t} "
                f"processors")

    # ------------------------------------------------------------------
    # Full executions.
    # ------------------------------------------------------------------
    def run(self, adversary: WindowAdversary, max_windows: int,
            stop_when: str = "all") -> ExecutionResult:
        """Run windows chosen by ``adversary`` until a stop condition.

        Args:
            adversary: the window adversary choosing each window.
            max_windows: hard cap on the number of windows (the caller's
                stand-in for "the adversary gave up"); executions that hit
                the cap are reported undecided-so-far rather than erroring.
            stop_when: ``"first"`` stops as soon as any processor decides
                (the paper's running-time measure), ``"all"`` keeps going
                until every live processor has decided.

        Returns:
            An :class:`ExecutionResult` for the (partial) execution.
        """
        if stop_when not in ("first", "all"):
            raise ValueError("stop_when must be 'first' or 'all'")
        adversary.bind(self)
        while self.window_index < max_windows:
            if stop_when == "first" and self.any_decided():
                break
            if stop_when == "all" and self.all_live_decided():
                break
            spec = adversary.next_window(self)
            self.run_window(spec)
        return self.result()

    def result(self) -> ExecutionResult:
        """Summarise the execution so far."""
        outputs = self.outputs()
        chain_depths = [proc.deciding_chain_depth for proc in self.processors
                        if proc.deciding_chain_depth is not None]
        return ExecutionResult(
            n=self.n,
            t=self.t,
            inputs=self.inputs,
            outputs=outputs,
            crashed=tuple(self.crashed_processors()),
            windows_elapsed=self.window_index,
            first_decision_window=self._first_decision_window,
            message_chain_length=min(chain_depths) if chain_depths else None,
            messages_sent=self.network.sent_count,
            messages_delivered=self.network.delivered_count,
            total_resets=self.total_resets,
            total_coin_flips=sum(proc.protocol.coin_flips
                                 for proc in self.processors),
            agreement_violated=len({o for o in outputs
                                    if o is not None}) > 1,
            validity_violated=not {o for o in outputs
                                   if o is not None}.issubset(
                                       set(self.inputs))
            if any(o is not None for o in outputs) else False,
            configurations=self.configurations,
            trace=self.trace,
        )


def run_execution(protocol_cls, n: int, t: int, inputs: Sequence[int],
                  adversary: WindowAdversary, max_windows: int,
                  seed: Optional[int] = None, stop_when: str = "all",
                  record_configurations: bool = False,
                  record_trace: bool = False,
                  **protocol_kwargs) -> ExecutionResult:
    """Convenience wrapper: build an engine and run a full execution.

    This is the main entry point used by examples, experiments and tests
    when they do not need to keep the engine around.
    """
    # Imported here to keep the simulation layer free of a module-level
    # dependency on the protocol layer (which depends back on simulation).
    from repro.protocols.base import ProtocolFactory

    factory = ProtocolFactory(protocol_cls, n=n, t=t, **protocol_kwargs)
    engine = WindowEngine(factory, inputs, seed=seed,
                          record_configurations=record_configurations,
                          record_trace=record_trace)
    return engine.run(adversary, max_windows=max_windows, stop_when=stop_when)


__all__ = ["WindowSpec", "WindowAdversary", "WindowEngine", "run_execution"]
