"""Processor wrapper: a protocol instance plus failure bookkeeping.

A :class:`Processor` couples the per-processor protocol logic with the pieces
of state the *model* (rather than the algorithm) owns: whether the processor
has crashed, how many resetting failures it has suffered, and the
message-chain depth accounting used as the running-time measure in the
crash-failure setting (Section 5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.simulation.errors import InvalidStepError
from repro.simulation.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.protocols.base import Protocol


class Processor:
    """A single processor participating in an execution.

    Attributes:
        protocol: the protocol instance carrying the algorithm state.
        crashed: whether the processor has suffered a crash failure.  A
            crashed processor takes no further steps and receives nothing.
    """

    __slots__ = ("protocol", "crashed", "_max_received_chain",
                 "_deciding_chain_depth", "_messages_sent",
                 "_messages_received")

    def __init__(self, protocol: "Protocol") -> None:
        self.protocol = protocol
        self.crashed = False
        self._max_received_chain = 0
        self._deciding_chain_depth: Optional[int] = None
        self._messages_sent = 0
        self._messages_received = 0

    # ------------------------------------------------------------------
    # Identity and decision passthroughs.
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        """The processor identity."""
        return self.protocol.pid

    @property
    def output(self) -> Optional[int]:
        """The write-once output bit (``None`` while undecided)."""
        return self.protocol.output

    @property
    def decided(self) -> bool:
        """Whether the processor has decided."""
        return self.protocol.decided

    @property
    def input_bit(self) -> int:
        """The processor's input bit."""
        return self.protocol.input_bit

    # ------------------------------------------------------------------
    # Step execution.
    # ------------------------------------------------------------------
    def send_step(self) -> List[Message]:
        """Take a sending step, returning the messages to submit.

        Crashed processors silently send nothing (their sending steps simply
        never get scheduled in a real execution; returning an empty list
        keeps the engines simple).
        """
        if self.crashed:
            return []
        messages = self.protocol.send_step()
        self._messages_sent += len(messages)
        return messages

    def receive_step(self, message: Message) -> None:
        """Deliver a message to the processor.

        Raises:
            InvalidStepError: if the processor has crashed or the message is
                addressed to someone else.
        """
        protocol = self.protocol
        if self.crashed:
            raise InvalidStepError(
                f"cannot deliver to crashed processor {self.pid}")
        if message.receiver != protocol.pid:
            raise InvalidStepError(
                f"message for {message.receiver} delivered to {self.pid}")
        was_decided = protocol.decided
        self._messages_received += 1
        if message.chain_depth > self._max_received_chain:
            self._max_received_chain = message.chain_depth
        protocol.receive_step(message)
        if not was_decided and protocol.decided:
            self._deciding_chain_depth = self._max_received_chain

    def reset(self) -> None:
        """Apply a resetting failure (erase volatile protocol memory)."""
        if self.crashed:
            raise InvalidStepError(
                f"cannot reset crashed processor {self.pid}")
        self.protocol.reset()

    def crash(self) -> None:
        """Apply a crash failure: the processor stops forever."""
        self.crashed = True

    # ------------------------------------------------------------------
    # Message-chain accounting (running-time measure of Theorem 17).
    # ------------------------------------------------------------------
    @property
    def outgoing_chain_depth(self) -> int:
        """Chain depth to stamp on messages sent at the next sending step.

        A message extends the longest chain among the messages its sender
        received before sending, so its depth is one more than that maximum.
        """
        return self._max_received_chain + 1

    @property
    def deciding_chain_depth(self) -> Optional[int]:
        """Longest received message chain at the moment of decision."""
        return self._deciding_chain_depth

    @property
    def messages_sent(self) -> int:
        """Number of messages this processor has sent."""
        return self._messages_sent

    @property
    def messages_received(self) -> int:
        """Number of messages delivered to this processor."""
        return self._messages_received

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def state_fingerprint(self) -> Tuple:
        """State snapshot used to build configurations.

        A crashed processor's fingerprint is tagged so that configurations
        distinguish crashed from live processors.
        """
        fingerprint = self.protocol.state_fingerprint()
        if self.crashed:
            return ("crashed",) + fingerprint
        return fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "crashed" if self.crashed else "live"
        return (f"Processor(pid={self.pid}, {status}, "
                f"output={self.output})")


__all__ = ["Processor"]
