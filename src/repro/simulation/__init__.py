"""Asynchronous message-passing simulation substrate.

This package implements the execution model of Section 2 of the paper: a
complete network of ``n`` processors with dedicated channels, executions as
sequences of sending / receiving / resetting (and crash) steps, acceptable
windows for the strongly adaptive adversary, and configurations as joint
state snapshots used by the lower-bound machinery.
"""

from repro.simulation.configuration import (Configuration, decided_one,
                                            decided_zero, hamming_ball,
                                            hamming_distance,
                                            point_to_set_distance,
                                            set_distance)
from repro.simulation.engine import StepAdversary, StepEngine
from repro.simulation.errors import (AdversaryBudgetError,
                                     ConfigurationMismatchError,
                                     InvalidStepError, InvalidWindowError,
                                     ProtocolViolationError, SimulationError)
from repro.simulation.events import Step, StepType
from repro.simulation.message import Message, broadcast
from repro.simulation.network import Network
from repro.simulation.processor import Processor
from repro.simulation.trace import ExecutionResult
from repro.simulation.windows import (WindowAdversary, WindowEngine,
                                      WindowSpec, run_execution)

__all__ = [
    "Configuration",
    "decided_zero",
    "decided_one",
    "hamming_ball",
    "hamming_distance",
    "point_to_set_distance",
    "set_distance",
    "StepAdversary",
    "StepEngine",
    "SimulationError",
    "InvalidWindowError",
    "InvalidStepError",
    "ProtocolViolationError",
    "AdversaryBudgetError",
    "ConfigurationMismatchError",
    "Step",
    "StepType",
    "Message",
    "broadcast",
    "Network",
    "Processor",
    "ExecutionResult",
    "WindowAdversary",
    "WindowEngine",
    "WindowSpec",
    "run_execution",
]
