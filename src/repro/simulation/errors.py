"""Exception types raised by the simulation substrate."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all errors raised by the simulation substrate."""


class InvalidWindowError(SimulationError):
    """An acceptable-window specification violates Definition 1.

    Raised when a window resets more than ``t`` processors, or when some
    receiver's sender set has fewer than ``n - t`` elements, or when indices
    fall outside ``[0, n)``.
    """


class InvalidStepError(SimulationError):
    """A step requested by an adversary cannot be applied.

    Examples: delivering a message that was never sent, delivering to a
    crashed processor, or letting a crashed processor take a sending step.
    """


class ProtocolViolationError(SimulationError):
    """A protocol implementation broke a structural contract.

    For example, a protocol declared ``fully_communicative`` failed to send
    to all processors after hearing from ``n - t`` of them, or a protocol
    wrote conflicting values to its write-once output bit.
    """


class AdversaryBudgetError(SimulationError):
    """An adversary exceeded its fault budget (more than ``t`` faults)."""


class ConfigurationMismatchError(SimulationError):
    """Two configurations of different sizes were compared."""


__all__ = [
    "SimulationError",
    "InvalidWindowError",
    "InvalidStepError",
    "ProtocolViolationError",
    "AdversaryBudgetError",
    "ConfigurationMismatchError",
]
