"""Step-level asynchronous execution engine.

While the window engine mirrors the acceptable-window structure of the
strongly adaptive model, the classical asynchronous adversaries of Sections 1
and 5 (crash and Byzantine) are defined at the granularity of individual
steps: the adversary repeatedly chooses which processor takes the next
sending step, which pending message is delivered next, and when failures
happen.  :class:`StepEngine` provides that granularity.  It is used by the
Bracha protocol experiments (Byzantine message corruption needs per-message
control) and by the FLP-flavoured unit tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.simulation.configuration import Configuration
from repro.simulation.errors import (AdversaryBudgetError, InvalidStepError)
from repro.simulation.events import Step, StepType
from repro.simulation.message import Message
from repro.simulation.network import Network
from repro.simulation.processor import Processor
from repro.simulation.trace import ExecutionResult, ExecutionTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.protocols.base import ProtocolFactory


class StepAdversary:
    """Interface for adversaries driving the step engine.

    The adversary is full-information: it can inspect the engine (all
    processor states, all pending messages) before choosing each step.
    """

    def bind(self, engine: "StepEngine") -> None:
        """Called once before the execution starts."""

    def next_step(self, engine: "StepEngine") -> Optional[Step]:
        """Return the next step to schedule, or ``None`` to stop."""
        raise NotImplementedError


class StepEngine:
    """Executes a protocol one fine-grained step at a time."""

    def __init__(self, factory: "ProtocolFactory", inputs: Sequence[int],
                 seed: Optional[int] = None,
                 crash_budget: Optional[int] = None,
                 reset_budget: Optional[int] = None,
                 record_trace: bool = False) -> None:
        """Build the engine.

        Args:
            factory: builds the per-processor protocol instances.
            inputs: the ``n`` initial input bits.
            seed: master randomness seed.
            crash_budget: maximum number of crash failures the adversary may
                cause (defaults to ``t``).
            reset_budget: maximum number of *simultaneously pending* resets
                is not meaningful at step granularity, so this caps the
                total number of resetting steps instead (defaults to
                unlimited; the window engine is the faithful reset model).
            record_trace: keep a full :class:`ExecutionTrace` of every
                step for the verification layer (off by default to keep
                long executions cheap).
        """
        self.factory = factory
        self.n = factory.n
        self.t = factory.t
        self.inputs = tuple(inputs)
        self.network = Network(self.n)
        protocols = factory.build(list(inputs), seed=seed)
        self.processors: List[Processor] = [Processor(p) for p in protocols]
        self.steps_taken = 0
        self.crash_budget = self.t if crash_budget is None else crash_budget
        self.reset_budget = reset_budget
        self.trace: Optional[ExecutionTrace] = None
        if record_trace:
            self.trace = ExecutionTrace(
                engine="step", n=self.n, t=self.t, inputs=self.inputs,
                seed=seed, crash_budget=self.crash_budget,
                reset_budget=reset_budget)
        self.total_crashes = 0
        self.total_resets = 0
        self._first_decision_step: Optional[int] = None
        # Decision bookkeeping, maintained incrementally so that the
        # per-step stop-condition checks are O(1) instead of scanning all
        # processors on every step.
        self._decided_count = sum(1 for proc in self.processors
                                  if proc.decided)
        self._live_undecided = sum(1 for proc in self.processors
                                   if not proc.crashed and not proc.decided)

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------
    def configuration(self) -> Configuration:
        """Snapshot the joint processor state."""
        return Configuration(states=tuple(
            proc.state_fingerprint() for proc in self.processors))

    def live_processors(self) -> List[int]:
        """Identities of processors that have not crashed."""
        return [proc.pid for proc in self.processors if not proc.crashed]

    def pending_messages(self) -> List[Message]:
        """All undelivered messages."""
        return self.network.all_pending()

    def any_decided(self) -> bool:
        """Whether some processor has decided."""
        return self._decided_count > 0

    def all_live_decided(self) -> bool:
        """Whether every non-crashed processor has decided."""
        return self._live_undecided == 0

    def outputs(self) -> Tuple[Optional[int], ...]:
        """Current output bits."""
        return tuple(proc.output for proc in self.processors)

    # ------------------------------------------------------------------
    # Step application.
    # ------------------------------------------------------------------
    def apply_step(self, step: Step) -> None:
        """Apply one step chosen by the adversary."""
        if step.step_type is StepType.SEND:
            self._apply_send(step.pid)
        elif step.step_type is StepType.RECEIVE:
            self._apply_receive(step)
        elif step.step_type is StepType.RESET:
            self._apply_reset(step.pid)
        elif step.step_type is StepType.CRASH:
            self._apply_crash(step.pid)
        else:  # pragma: no cover - enum is exhaustive
            raise InvalidStepError(f"unknown step type {step.step_type}")
        self.steps_taken += 1
        if self._first_decision_step is None and self.any_decided():
            self._first_decision_step = self.steps_taken

    def _note_decision(self, proc: Processor, was_decided: bool) -> None:
        """Update the incremental decision counters after a transition."""
        if not was_decided and proc.decided:
            self._decided_count += 1
            if not proc.crashed:
                self._live_undecided -= 1
            if self.trace is not None:
                self.trace.record_decide(proc.pid, proc.output)

    def _apply_send(self, pid: int) -> None:
        proc = self.processors[pid]
        if proc.crashed:
            raise InvalidStepError(
                f"crashed processor {pid} cannot take a sending step")
        was_decided = proc.decided
        messages = proc.send_step()
        if messages:
            messages = self.network.submit(
                messages, chain_depth=proc.outgoing_chain_depth)
        if self.trace is not None:
            self.trace.record_send(pid, messages)
        self._note_decision(proc, was_decided)

    def _apply_receive(self, step: Step) -> None:
        if step.message is None:
            raise InvalidStepError("receive step carries no message")
        message = self.network.deliver(step.message)
        proc = self.processors[message.receiver]
        if proc.crashed:
            # Deliveries to crashed processors are silently lost: the model
            # only requires delivery to processors taking infinitely many
            # steps.
            if self.trace is not None:
                self.trace.record_deliver(message, lost=True)
            return
        if self.trace is not None:
            self.trace.record_deliver(
                message, corrupted=step.corrupted_payload is not None)
        if step.corrupted_payload is not None:
            message = message.corrupted(step.corrupted_payload)
        was_decided = proc.decided
        proc.receive_step(message)
        self._note_decision(proc, was_decided)

    def _apply_reset(self, pid: int) -> None:
        if self.reset_budget is not None and \
                self.total_resets >= self.reset_budget:
            raise AdversaryBudgetError("reset budget exhausted")
        proc = self.processors[pid]
        if proc.crashed:
            raise InvalidStepError(
                f"cannot reset crashed processor {pid}")
        was_decided = proc.decided
        proc.reset()
        self.total_resets += 1
        if self.trace is not None:
            self.trace.record_reset(pid)
        self._note_decision(proc, was_decided)

    def _apply_crash(self, pid: int) -> None:
        proc = self.processors[pid]
        if proc.crashed:
            return
        if self.total_crashes >= self.crash_budget:
            raise AdversaryBudgetError(
                f"adversary exceeded crash budget of {self.crash_budget}")
        if not proc.decided:
            self._live_undecided -= 1
        proc.crash()
        self.total_crashes += 1
        if self.trace is not None:
            self.trace.record_crash(pid)

    # ------------------------------------------------------------------
    # Full executions.
    # ------------------------------------------------------------------
    def run(self, adversary: StepAdversary, max_steps: int,
            stop_when: str = "all") -> ExecutionResult:
        """Run steps chosen by ``adversary`` until a stop condition.

        Args:
            adversary: the step adversary.
            max_steps: hard cap on steps.
            stop_when: ``"first"`` stops at the first decision, ``"all"``
                when every live processor has decided.
        """
        if stop_when not in ("first", "all"):
            raise ValueError("stop_when must be 'first' or 'all'")
        adversary.bind(self)
        while self.steps_taken < max_steps:
            if stop_when == "first" and self.any_decided():
                break
            if stop_when == "all" and self.all_live_decided():
                break
            step = adversary.next_step(self)
            if step is None:
                break
            self.apply_step(step)
        return self.result()

    def result(self) -> ExecutionResult:
        """Summarise the execution so far."""
        outputs = self.outputs()
        chain_depths = [proc.deciding_chain_depth for proc in self.processors
                        if proc.deciding_chain_depth is not None]
        decided_values = {o for o in outputs if o is not None}
        return ExecutionResult(
            n=self.n,
            t=self.t,
            inputs=self.inputs,
            outputs=outputs,
            crashed=tuple(pid for pid in range(self.n)
                          if self.processors[pid].crashed),
            steps_elapsed=self.steps_taken,
            first_decision_step=self._first_decision_step,
            message_chain_length=min(chain_depths) if chain_depths else None,
            messages_sent=self.network.sent_count,
            messages_delivered=self.network.delivered_count,
            total_resets=self.total_resets,
            total_coin_flips=sum(proc.protocol.coin_flips
                                 for proc in self.processors),
            agreement_violated=len(decided_values) > 1,
            validity_violated=bool(decided_values) and
            not decided_values.issubset(set(self.inputs)),
            trace=self.trace,
        )


__all__ = ["StepAdversary", "StepEngine"]
