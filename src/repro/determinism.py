"""The sanctioned way to build ``random.Random`` from an optional seed.

``random.Random(None)`` (and bare ``random.Random()``) seeds from OS
entropy, so any constructor with a ``seed: Optional[int] = None``
parameter that forwards it verbatim silently becomes nondeterministic
the moment a caller omits the seed — the exact bug class the
``repro lint`` D5 check hunts.  :func:`seeded_rng` is the drop-in
replacement: explicit seeds behave exactly as before, and the ``None``
fallback draws from a module-level stream that is itself fixed-seeded,
so unseeded constructions are

* *reproducible*: the k-th unseeded RNG built by a process sees the same
  seed in every run, on every platform;
* *mutually independent*: consecutive unseeded constructions still get
  distinct streams (a fixed shared constant would make every unseeded
  adversary in a sweep identical).

Worker processes re-import this module and therefore restart the
fallback stream, but parallel-runner workers always derive explicit
per-trial seeds (:func:`repro.runner.spec.derive_seed`), so the fallback
only governs interactive/unseeded use.
"""

from __future__ import annotations

import random
from typing import Optional

FALLBACK_MASTER_SEED = 0x5EED_AB1E
"""Seed of the process-wide fallback stream (arbitrary but frozen)."""

_fallback_stream = random.Random(FALLBACK_MASTER_SEED)


def seeded_rng(seed: Optional[int] = None) -> random.Random:
    """A ``random.Random`` that is deterministic even without a seed.

    Args:
        seed: explicit seed; ``None`` draws the seed from the fixed
            process-wide fallback stream instead of OS entropy.
    """
    if seed is None:
        seed = _fallback_stream.getrandbits(64)
    return random.Random(seed)


def reset_fallback_stream() -> None:
    """Rewind the fallback stream to its initial state (test helper)."""
    _fallback_stream.seed(FALLBACK_MASTER_SEED)


__all__ = ["FALLBACK_MASTER_SEED", "seeded_rng", "reset_fallback_stream"]
