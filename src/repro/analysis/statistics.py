"""Statistics helpers for the experiment harness.

The running-time experiments (E2, E4) produce samples of "windows until
first decision" across many trials and several values of ``n``; the claims
being reproduced are about the *shape* of the growth (exponential in ``n``
for a fixed fault fraction), so the harness needs exponential fits with
confidence information, plus basic summaries of trial batches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics of one batch of trials.

    Attributes:
        count: number of trials.
        mean: sample mean.
        median: sample median.
        std: sample standard deviation (ddof=1; 0.0 for a single trial).
        minimum: smallest observation.
        maximum: largest observation.
        ci_low, ci_high: 95% confidence interval for the mean (t-interval).
    """

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float


def summarize_trials(values: Sequence[float],
                     confidence: float = 0.95) -> TrialSummary:
    """Summarise a batch of trial measurements."""
    if not values:
        raise ValueError("cannot summarise an empty batch")
    data = np.asarray(values, dtype=float)
    mean = float(np.mean(data))
    median = float(np.median(data))
    std = float(np.std(data, ddof=1)) if len(data) > 1 else 0.0
    if len(data) > 1 and std > 0:
        sem = std / math.sqrt(len(data))
        low, high = stats.t.interval(confidence, len(data) - 1, loc=mean,
                                     scale=sem)
    else:
        low = high = mean
    return TrialSummary(count=len(data), mean=mean, median=median, std=std,
                        minimum=float(np.min(data)),
                        maximum=float(np.max(data)), ci_low=float(low),
                        ci_high=float(high))


@dataclass(frozen=True)
class ExponentialFit:
    """Least-squares fit of ``y = a * exp(b * x)`` via log-linear regression.

    Attributes:
        a: the fitted prefactor.
        b: the fitted growth rate (per unit of ``x``).
        r_squared: coefficient of determination of the log-linear fit.
        doubling_x: increase in ``x`` that doubles ``y`` (``ln 2 / b``),
            ``inf`` when the fit is flat or decreasing.
    """

    a: float
    b: float
    r_squared: float

    @property
    def doubling_x(self) -> float:
        if self.b <= 0:
            return math.inf
        return math.log(2.0) / self.b

    def predict(self, x: float) -> float:
        """The fitted value at ``x``."""
        return self.a * math.exp(self.b * x)


def fit_exponential(xs: Sequence[float],
                    ys: Sequence[float]) -> ExponentialFit:
    """Fit ``y = a * exp(b * x)`` by linear regression on ``log y``.

    Raises:
        ValueError: when fewer than two positive observations are supplied.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if y > 0]
    if len(pairs) < 2:
        raise ValueError("need at least two positive points for a fit")
    x_arr = np.asarray([x for x, _ in pairs], dtype=float)
    log_y = np.log(np.asarray([y for _, y in pairs], dtype=float))
    slope, intercept, r_value, _, _ = stats.linregress(x_arr, log_y)
    return ExponentialFit(a=float(math.exp(intercept)), b=float(slope),
                          r_squared=float(r_value ** 2))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("cannot take the geometric mean of nothing")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    return float(math.exp(sum(math.log(value) for value in values)
                          / len(values)))


def empirical_probability(successes: int, trials: int) -> Tuple[float, float, float]:
    """Point estimate and Wilson 95% interval for a success probability."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    p_hat = successes / trials
    z = 1.959963984540054
    denominator = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denominator
    margin = (z * math.sqrt(p_hat * (1 - p_hat) / trials
                            + z * z / (4 * trials * trials))) / denominator
    return p_hat, max(0.0, centre - margin), min(1.0, centre + margin)


def format_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None
                 ) -> str:
    """Render a list of dict rows as a fixed-width text table.

    Used by the CLI, the examples and the benchmark harness to print the
    experiment tables documented in EXPERIMENTS.md.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [[_format_cell(row.get(column)) for column in columns]
                     for row in rows]
    widths = [max(len(str(column)), *(len(row[i]) for row in rendered_rows))
              for i, column in enumerate(columns)]
    header = "  ".join(str(column).ljust(width)
                       for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths))
                     for row in rendered_rows)
    return "\n".join([header, separator, body])


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


__all__ = [
    "TrialSummary",
    "summarize_trials",
    "ExponentialFit",
    "fit_exponential",
    "geometric_mean",
    "empirical_probability",
    "format_table",
]
