"""Product measures on finite spaces and numerical Talagrand verification.

The lower bound's engine is a statement about product distributions: the
joint distribution over the processors' next states induced by one
acceptable window is a product distribution (each processor's randomness is
local and independent), and Talagrand's inequality (Lemma 9) limits how much
weight any product distribution can put on two Hamming-separated sets.

This module provides a small, exact toolkit for finite product
distributions — sampling, exact enumeration of weights, Hamming balls around
explicit sets — so the E3/E8 experiments can verify Lemma 9, the two-set
corollary used in Lemma 13, and the single-coordinate degradation step used
in Lemma 14 numerically, independently of any protocol simulation.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.talagrand import talagrand_bound, two_set_bound


def hamming(x: Sequence, y: Sequence) -> int:
    """Hamming distance between two equal-length tuples."""
    if len(x) != len(y):
        raise ValueError("points have different dimensions")
    return sum(1 for a, b in zip(x, y) if a != b)


def distance_to_set(x: Sequence, points: Iterable[Sequence]) -> Optional[int]:
    """Minimum Hamming distance from ``x`` to any point in ``points``."""
    best: Optional[int] = None
    for point in points:
        distance = hamming(x, point)
        if best is None or distance < best:
            best = distance
        if best == 0:
            return 0
    return best


def set_to_set_distance(a: Iterable[Sequence],
                        b: Iterable[Sequence]) -> Optional[int]:
    """Minimum Hamming distance between two point sets (Definition 7)."""
    best: Optional[int] = None
    b_list = list(b)
    for x in a:
        distance = distance_to_set(x, b_list)
        if distance is None:
            continue
        if best is None or distance < best:
            best = distance
        if best == 0:
            return 0
    return best


class CoordinateDistribution:
    """A finite distribution for a single coordinate of a product space.

    Args:
        weights: mapping from outcome to non-negative weight; weights are
            normalised internally.
    """

    def __init__(self, weights: Dict[object, float]) -> None:
        if not weights:
            raise ValueError("coordinate distribution needs outcomes")
        total = float(sum(weights.values()))
        if total <= 0:
            raise ValueError("total weight must be positive")
        if any(weight < 0 for weight in weights.values()):
            raise ValueError("weights must be non-negative")
        self._probabilities = {outcome: weight / total
                               for outcome, weight in weights.items()}

    @staticmethod
    def uniform(outcomes: Sequence) -> "CoordinateDistribution":
        """The uniform distribution over the given outcomes."""
        return CoordinateDistribution({outcome: 1.0 for outcome in outcomes})

    @staticmethod
    def bernoulli(p: float) -> "CoordinateDistribution":
        """A {0, 1}-valued coordinate with ``P[1] = p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must lie in [0, 1]")
        return CoordinateDistribution({0: 1.0 - p, 1: p})

    @staticmethod
    def point_mass(outcome) -> "CoordinateDistribution":
        """A deterministic coordinate."""
        return CoordinateDistribution({outcome: 1.0})

    @property
    def outcomes(self) -> List:
        """The support of the distribution."""
        return list(self._probabilities)

    def probability(self, outcome) -> float:
        """Probability of a single outcome (0.0 if outside the support)."""
        return self._probabilities.get(outcome, 0.0)

    def sample(self, rng: random.Random):
        """Draw one outcome."""
        u = rng.random()
        cumulative = 0.0
        outcomes = list(self._probabilities.items())
        for outcome, probability in outcomes:
            cumulative += probability
            if u <= cumulative:
                return outcome
        return outcomes[-1][0]

    def items(self) -> List[Tuple[object, float]]:
        """(outcome, probability) pairs."""
        return list(self._probabilities.items())


class ProductDistribution:
    """A product distribution ``Omega_1 x ... x Omega_n``.

    Supports exact weight computation by enumeration (for small supports)
    and Monte-Carlo sampling, plus the single-coordinate replacement
    operation used in the Lemma 14 interpolation argument.
    """

    def __init__(self, coordinates: Sequence[CoordinateDistribution]) -> None:
        if not coordinates:
            raise ValueError("product distribution needs coordinates")
        self.coordinates = list(coordinates)

    @property
    def n(self) -> int:
        """Number of coordinates."""
        return len(self.coordinates)

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def uniform_bits(n: int) -> "ProductDistribution":
        """``n`` independent fair coins."""
        return ProductDistribution(
            [CoordinateDistribution.bernoulli(0.5) for _ in range(n)])

    @staticmethod
    def bernoulli(ps: Sequence[float]) -> "ProductDistribution":
        """Independent biased coins with the given success probabilities."""
        return ProductDistribution(
            [CoordinateDistribution.bernoulli(p) for p in ps])

    def replace_coordinate(self, index: int,
                           distribution: CoordinateDistribution
                           ) -> "ProductDistribution":
        """A copy with coordinate ``index`` replaced (Lemma 14's hybrid step)."""
        coordinates = list(self.coordinates)
        coordinates[index] = distribution
        return ProductDistribution(coordinates)

    # ------------------------------------------------------------------
    # Exact computations (enumeration).
    # ------------------------------------------------------------------
    def support_size(self) -> int:
        """Number of points in the support."""
        size = 1
        for coordinate in self.coordinates:
            size *= len(coordinate.outcomes)
        return size

    def enumerate_support(self) -> Iterable[Tuple[Tuple, float]]:
        """Yield ``(point, probability)`` for every support point."""
        spaces = [coordinate.items() for coordinate in self.coordinates]
        for combination in itertools.product(*spaces):
            point = tuple(outcome for outcome, _ in combination)
            probability = 1.0
            for _, p in combination:
                probability *= p
            yield point, probability

    def weight(self, predicate: Callable[[Tuple], bool]) -> float:
        """Exact probability of the event ``{x : predicate(x)}``."""
        return sum(probability
                   for point, probability in self.enumerate_support()
                   if predicate(point))

    def weight_of_points(self, points: Iterable[Sequence]) -> float:
        """Exact probability of an explicit point set."""
        point_set = {tuple(point) for point in points}
        return self.weight(lambda x: x in point_set)

    def ball_weight(self, points: Iterable[Sequence], radius: int) -> float:
        """Exact probability of the Hamming ball ``B(A, radius)``."""
        point_list = [tuple(point) for point in points]

        def in_ball(x: Tuple) -> bool:
            distance = distance_to_set(x, point_list)
            return distance is not None and distance <= radius

        return self.weight(in_ball)

    # ------------------------------------------------------------------
    # Monte-Carlo estimation.
    # ------------------------------------------------------------------
    def sample(self, rng: random.Random) -> Tuple:
        """Draw one point."""
        return tuple(coordinate.sample(rng)
                     for coordinate in self.coordinates)

    def estimate_weight(self, predicate: Callable[[Tuple], bool],
                        samples: int,
                        seed: Optional[int] = None) -> float:
        """Monte-Carlo estimate of an event's probability."""
        rng = random.Random(seed)
        hits = sum(1 for _ in range(samples)
                   if predicate(self.sample(rng)))
        return hits / samples


@dataclass
class TalagrandCheck:
    """Result of verifying Lemma 9 on a concrete (distribution, set, radius).

    Attributes:
        p_set: probability of the set ``A``.
        p_ball: probability of the Hamming ball ``B(A, d)``.
        product: the quantity ``P[A] * (1 - P[B(A, d)])`` the lemma bounds.
        bound: the Talagrand bound ``exp(-d^2 / 4n)``.
        satisfied: whether the inequality holds (it always should).
    """

    p_set: float
    p_ball: float
    product: float
    bound: float
    satisfied: bool


def verify_talagrand(distribution: ProductDistribution,
                     points: Iterable[Sequence], radius: int,
                     exact: bool = True, samples: int = 20000,
                     seed: Optional[int] = None) -> TalagrandCheck:
    """Check Lemma 9 for an explicit set of points.

    Args:
        distribution: the product distribution.
        points: the set ``A`` as explicit points.
        radius: the Hamming radius ``d``.
        exact: enumerate the support exactly (small spaces) or sample.
        samples: Monte-Carlo samples when ``exact`` is False.
    """
    point_list = [tuple(point) for point in points]
    if exact:
        p_set = distribution.weight_of_points(point_list)
        p_ball = distribution.ball_weight(point_list, radius)
    else:
        point_set = set(point_list)

        def in_ball(x: Tuple) -> bool:
            distance = distance_to_set(x, point_list)
            return distance is not None and distance <= radius

        p_set = distribution.estimate_weight(
            lambda x: x in point_set, samples, seed=seed)
        p_ball = distribution.estimate_weight(
            in_ball, samples, seed=None if seed is None else seed + 1)
    product = p_set * (1.0 - p_ball)
    bound = talagrand_bound(radius, distribution.n)
    return TalagrandCheck(p_set=p_set, p_ball=p_ball, product=product,
                          bound=bound, satisfied=product <= bound + 1e-9)


def verify_two_set_bound(distribution: ProductDistribution,
                         set_a: Iterable[Sequence],
                         set_b: Iterable[Sequence]) -> Tuple[float, float, float, bool]:
    """Check the Lemma 13 corollary: far-apart sets cannot both be heavy.

    Returns ``(P[A], P[B], tau, consistent)`` where ``tau`` is the two-set
    bound ``exp(-d^2 / 8n)`` for the measured separation ``d`` and
    ``consistent`` is True unless both probabilities exceed ``tau`` (which
    would contradict the corollary).
    """
    a_list = [tuple(point) for point in set_a]
    b_list = [tuple(point) for point in set_b]
    separation = set_to_set_distance(a_list, b_list)
    if separation is None:
        raise ValueError("both sets must be non-empty")
    p_a = distribution.weight_of_points(a_list)
    p_b = distribution.weight_of_points(b_list)
    tau = two_set_bound(float(separation), distribution.n)
    consistent = not (p_a > tau and p_b > tau)
    return p_a, p_b, tau, consistent


__all__ = [
    "hamming",
    "distance_to_set",
    "set_to_set_distance",
    "CoordinateDistribution",
    "ProductDistribution",
    "TalagrandCheck",
    "verify_talagrand",
    "verify_two_set_bound",
]
