"""Backwards-compatible wrappers over the experiment registry.

Each experiment of EXPERIMENTS.md used to be a hand-rolled function here;
they now live as declarative :class:`~repro.experiments.base.Experiment`
definitions in :mod:`repro.experiments.definitions`, registered by name in
:mod:`repro.experiments.registry` and all sharing one grid-expansion path
over :mod:`repro.runner`.  These wrappers keep the historical signatures
(and, at a fixed master seed, the **bit-identical rows** — pinned by
``tests/test_experiments_golden.py``) for callers that predate the
registry.

New code should use the registry directly::

    from repro.experiments import get_experiment

    rows = get_experiment("E2").run(params={"ns": (12, 16)}, workers=4)

or the CLI: ``python -m repro run E2 --quick``.  The Monte Carlo
experiments (E1, E2, E4, E6, E7) fan their trials out across worker
processes; control the worker count with the ``workers`` argument or
``$REPRO_WORKERS`` (``workers=0`` forces the serial in-process path).
Per-trial seeds are drawn from the master-seeded stream before any trial
executes, so rows are bit-identical across worker counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _run(name: str, params: Dict, workers: Optional[int] = None) -> List[Dict]:
    # Imported lazily: repro.experiments imports repro.analysis.statistics,
    # so a module-level import here would be circular when this module is
    # reached first through the repro.analysis package init.
    from repro.experiments import get_experiment

    return get_experiment(name).run(params=params, workers=workers)


def run_feasibility_experiment(ns: Sequence[int] = (12, 18, 24),
                               trials: int = 3,
                               max_windows: int = 60000,
                               seed: int = 0,
                               workers: Optional[int] = None) -> List[Dict]:
    """Correctness/termination of the reset-tolerant algorithm (E1)."""
    return _run("E1", {"ns": tuple(ns), "trials": trials,
                       "max_windows": max_windows, "seed": seed}, workers)


def run_exponential_rounds_experiment(ns: Sequence[int] = (12, 16, 20, 24),
                                      trials: int = 5,
                                      max_windows: int = 200000,
                                      use_resets: bool = True,
                                      seed: int = 0,
                                      workers: Optional[int] = None
                                      ) -> List[Dict]:
    """Windows until first decision under the blocking adversary (E2)."""
    return _run("E2", {"ns": tuple(ns), "trials": trials,
                       "max_windows": max_windows, "use_resets": use_resets,
                       "seed": seed}, workers)


def run_lower_bound_experiment(ns: Sequence[int] = (8, 12),
                               samples: int = 6,
                               separation_trials: int = 8,
                               seed: int = 0) -> List[Dict]:
    """Numerical checks of the Theorem 5 machinery at small ``n`` (E3)."""
    return _run("E3", {"ns": tuple(ns), "samples": samples,
                       "separation_trials": separation_trials,
                       "seed": seed})


def run_crash_forgetful_experiment(ns: Sequence[int] = (9, 13, 17, 21),
                                   trials: int = 10,
                                   fault_fraction: float = 0.25,
                                   max_windows: int = 200000,
                                   seed: int = 0,
                                   workers: Optional[int] = None
                                   ) -> List[Dict]:
    """Message-chain length of Ben-Or under the crash-model adversary (E4)."""
    return _run("E4", {"ns": tuple(ns), "trials": trials,
                       "fault_fraction": fault_fraction,
                       "max_windows": max_windows, "seed": seed}, workers)


def run_committee_experiment(ns: Sequence[int] = (32, 64, 128),
                             trials: int = 40,
                             fault_fraction: float = 0.2,
                             seed: int = 0) -> List[Dict]:
    """Committee election versus the adaptive-safe algorithm (E5)."""
    return _run("E5", {"ns": tuple(ns), "trials": trials,
                       "fault_fraction": fault_fraction, "seed": seed})


def run_baseline_experiment(ben_or_ns: Sequence[int] = (9, 15),
                            bracha_ns: Sequence[int] = (7, 10),
                            trials: int = 3,
                            max_windows: int = 5000,
                            max_steps: int = 400000,
                            seed: int = 0,
                            workers: Optional[int] = None) -> List[Dict]:
    """Ben-Or under crash failures and Bracha under Byzantine failures (E6)."""
    return _run("E6", {"ben_or_ns": tuple(ben_or_ns),
                       "bracha_ns": tuple(bracha_ns), "trials": trials,
                       "max_windows": max_windows, "max_steps": max_steps,
                       "seed": seed}, workers)


def run_threshold_ablation(n: int = 24, trials: int = 4,
                           max_windows: int = 3000,
                           seed: int = 0,
                           workers: Optional[int] = None) -> List[Dict]:
    """Effect of violating each Theorem 4 threshold constraint (E7)."""
    return _run("E7", {"n": n, "trials": trials,
                       "max_windows": max_windows, "seed": seed}, workers)


def run_constants_experiment(cs: Sequence[float] = (0.05, 0.1, 1.0 / 6.0),
                             ns: Sequence[int] = (50, 100, 200, 400),
                             seed: int = 0) -> List[Dict]:
    """Theorem 5 constants and a numerical Talagrand verification (E8)."""
    return _run("E8", {"cs": tuple(cs), "ns": tuple(ns), "seed": seed})


__all__ = [
    "run_feasibility_experiment",
    "run_exponential_rounds_experiment",
    "run_lower_bound_experiment",
    "run_crash_forgetful_experiment",
    "run_committee_experiment",
    "run_baseline_experiment",
    "run_threshold_ablation",
    "run_constants_experiment",
]
