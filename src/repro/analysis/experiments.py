"""Experiment runners: one function per experiment in EXPERIMENTS.md.

Every function returns a list of flat dictionaries (table rows).  The
benchmark harness wraps these functions with pytest-benchmark; the examples
print them with :func:`repro.analysis.statistics.format_table`.  Trial
counts and system sizes are parameters so that quick smoke runs and full
reproductions use the same code path.

The Monte Carlo experiments (E1, E2, E4, E6, E7) describe every trial as a
picklable :class:`~repro.runner.spec.TrialSpec` and hand the whole batch to
:mod:`repro.runner`, which fans trials out across worker processes (control
the worker count with the ``workers`` argument or ``$REPRO_WORKERS``;
``workers=0`` forces the serial in-process path).  Per-trial seeds are drawn
from the master-seeded stream in the same order the original serial loops
drew them, so rows are bit-identical across worker counts — and to the
pre-runner versions of these functions at the same master seed.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import split_vote_analysis
from repro.core.lower_bound import lower_bound_report
from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.core.talagrand import lower_bound_constants
from repro.core.thresholds import (default_thresholds, max_tolerable_t,
                                   threshold_grid)
from repro.analysis.product_measure import (ProductDistribution,
                                            verify_talagrand)
from repro.analysis.statistics import (fit_exponential, summarize_trials)
from repro.protocols.ben_or import BenOrAgreement
from repro.protocols.committee import CommitteeElectionProtocol, failure_rate
from repro.runner import (TrialSpec, correctness_flags, group_by_tag,
                          measure, message_chain_length, run_trials,
                          windows_to_first_decision)
from repro.workloads.inputs import split, standard_workloads, unanimous


# ----------------------------------------------------------------------
# E1: Theorem 4 feasibility — correctness and termination sweep.
# ----------------------------------------------------------------------
def _seeded_kwargs(rng: random.Random, extra: Optional[Dict] = None) -> Dict:
    """Adversary kwargs with a freshly drawn 32-bit seed."""
    kwargs: Dict[str, Any] = {"seed": rng.getrandbits(32)}
    if extra:
        kwargs.update(extra)
    return kwargs


# The strongly adaptive adversary battery of E1: display name ->
# (registry name, kwargs builder).  Builders draw from the experiment's
# master-seeded stream exactly when a trial is described, preserving the
# historical draw order.
_E1_ADVERSARIES: Tuple[Tuple[str, str, Any], ...] = (
    ("benign", "benign", None),
    ("random", "random-scheduler",
     lambda rng: _seeded_kwargs(rng, {"reset_probability": 0.5})),
    ("silencing", "silencing", None),
    ("split-vote", "split-vote", _seeded_kwargs),
    ("adaptive-resetting", "adaptive-resetting", _seeded_kwargs),
)


def run_feasibility_experiment(ns: Sequence[int] = (12, 18, 24),
                               trials: int = 3,
                               max_windows: int = 60000,
                               seed: int = 0,
                               workers: Optional[int] = None) -> List[Dict]:
    """Correctness/termination of the reset-tolerant algorithm (E1).

    For every ``n`` (with ``t`` the largest value admitted by Theorem 4),
    every standard workload and a battery of strongly adaptive adversaries,
    runs several executions and reports whether agreement, validity and
    termination held.
    """
    rng = random.Random(seed)
    specs: List[TrialSpec] = []
    cells: List[Dict] = []
    for n in ns:
        t = max_tolerable_t(n)
        for workload_name, inputs in standard_workloads(
                n, seed=rng.getrandbits(32)).items():
            for display_name, adversary, kwargs_builder in _E1_ADVERSARIES:
                tag = ("E1", n, workload_name, display_name)
                for _ in range(trials):
                    specs.append(TrialSpec(
                        protocol="reset-tolerant", adversary=adversary,
                        n=n, t=t, inputs=tuple(inputs),
                        adversary_kwargs=(kwargs_builder(rng)
                                          if kwargs_builder else {}),
                        seed=rng.getrandbits(32), max_windows=max_windows,
                        stop_when="all", tag=tag))
                cells.append({"tag": tag, "n": n, "t": t,
                              "workload": workload_name,
                              "adversary": display_name})
    grouped = group_by_tag(specs, run_trials(specs, workers=workers))
    rows: List[Dict] = []
    for cell in cells:
        results = grouped[cell["tag"]]
        agreement_ok, validity_ok, terminated = correctness_flags(results)
        windows_used = [result.windows_elapsed for result in results]
        rows.append({
            "experiment": "E1",
            "n": cell["n"],
            "t": cell["t"],
            "workload": cell["workload"],
            "adversary": cell["adversary"],
            "agreement_ok": agreement_ok,
            "validity_ok": validity_ok,
            "terminated": terminated,
            "mean_windows": sum(windows_used) / len(windows_used),
            "max_windows_observed": max(windows_used),
        })
    return rows


# ----------------------------------------------------------------------
# E2: exponential running time against the split-vote adversary.
# ----------------------------------------------------------------------
def run_exponential_rounds_experiment(ns: Sequence[int] = (12, 16, 20, 24),
                                      trials: int = 5,
                                      max_windows: int = 200000,
                                      use_resets: bool = True,
                                      seed: int = 0,
                                      workers: Optional[int] = None
                                      ) -> List[Dict]:
    """Windows until first decision under the blocking adversary (E2).

    Also reports the analytic prediction of
    :func:`repro.core.analysis.split_vote_analysis` and, in the final
    synthetic row, the exponential fit of measured means against ``n``.
    """
    rng = random.Random(seed)
    adversary = "adaptive-resetting" if use_resets else "split-vote"
    specs: List[TrialSpec] = []
    cells: List[Dict] = []
    for n in ns:
        t = max_tolerable_t(n)
        if t == 0:
            continue
        thresholds = default_thresholds(n, t)
        analytic = split_vote_analysis(thresholds)
        inputs = split(n)
        for _ in range(trials):
            specs.append(TrialSpec(
                protocol="reset-tolerant", adversary=adversary,
                n=n, t=t, inputs=tuple(inputs),
                adversary_kwargs=_seeded_kwargs(rng),
                seed=rng.getrandbits(32), max_windows=max_windows,
                stop_when="first", tag=("E2", n, "split")))
            specs.append(TrialSpec(
                protocol="reset-tolerant", adversary="split-vote",
                n=n, t=t, inputs=tuple(unanimous(n, 1)),
                adversary_kwargs=_seeded_kwargs(rng),
                seed=rng.getrandbits(32), max_windows=max_windows,
                stop_when="first", tag=("E2", n, "unanimous")))
        cells.append({"n": n, "t": t,
                      "analytic_windows": analytic.expected_windows})
    grouped = group_by_tag(specs, run_trials(specs, workers=workers))
    rows: List[Dict] = []
    means: List[float] = []
    used_ns: List[int] = []
    for cell in cells:
        n = cell["n"]
        windows = measure(grouped[("E2", n, "split")],
                          windows_to_first_decision)
        unanimous_windows = measure(grouped[("E2", n, "unanimous")],
                                    windows_to_first_decision)
        summary = summarize_trials(windows)
        means.append(summary.mean)
        used_ns.append(n)
        rows.append({
            "experiment": "E2",
            "n": n,
            "t": cell["t"],
            "inputs": "split",
            "trials": trials,
            "mean_windows": summary.mean,
            "median_windows": summary.median,
            "max_windows": summary.maximum,
            "analytic_expected_windows": cell["analytic_windows"],
            "unanimous_mean_windows":
                sum(unanimous_windows) / len(unanimous_windows),
            "fit_growth_rate_per_processor": None,
            "fit_r_squared": None,
        })
    if len(means) >= 2:
        fit = fit_exponential(used_ns, means)
        rows.append({
            "experiment": "E2-fit",
            "n": None,
            "t": None,
            "inputs": "split",
            "trials": trials,
            "mean_windows": None,
            "median_windows": None,
            "max_windows": None,
            "analytic_expected_windows": None,
            "unanimous_mean_windows": None,
            "fit_growth_rate_per_processor": fit.b,
            "fit_r_squared": fit.r_squared,
        })
    return rows


# ----------------------------------------------------------------------
# E3: lower-bound machinery checks (Lemmas 9, 11, 14 and Theorem 5 inputs).
# ----------------------------------------------------------------------
def run_lower_bound_experiment(ns: Sequence[int] = (8, 12),
                               samples: int = 6,
                               separation_trials: int = 8,
                               seed: int = 0) -> List[Dict]:
    """Numerical checks of the Theorem 5 machinery at small ``n`` (E3)."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    for n in ns:
        t = max_tolerable_t(n)
        if t == 0:
            continue
        report = lower_bound_report(
            ResetTolerantAgreement, n=n, t=t, samples=samples,
            separation_trials=separation_trials, seed=rng.getrandbits(32))
        rows.append({
            "experiment": "E3",
            "n": n,
            "t": t,
            "decision_set_min_distance": report.separation.min_distance,
            "required_separation": report.separation.required,
            "separation_holds": report.separation.satisfied,
            "tau": report.tau,
            "hybrid_best_j": report.hybrid_best.j,
            "hybrid_best_worst_probability": report.hybrid_best.worst,
            "endpoint_worst_probability": report.endpoint_worst,
            "balanced_inputs_ones": sum(report.balanced_inputs.inputs),
            "balanced_zero_probability":
                report.balanced_inputs.zero_probability,
            "balanced_one_probability":
                report.balanced_inputs.one_probability,
        })
    return rows


# ----------------------------------------------------------------------
# E4: crash-model lower bound on forgetful, fully communicative algorithms.
# ----------------------------------------------------------------------
def run_crash_forgetful_experiment(ns: Sequence[int] = (9, 13, 17, 21),
                                   trials: int = 10,
                                   fault_fraction: float = 0.25,
                                   max_windows: int = 200000,
                                   seed: int = 0,
                                   workers: Optional[int] = None
                                   ) -> List[Dict]:
    """Message-chain length of Ben-Or under the crash-model adversary (E4)."""
    rng = random.Random(seed)
    specs: List[TrialSpec] = []
    cells: List[Dict] = []
    for n in ns:
        t = max(1, int(fault_fraction * n))
        if t >= n / 2:
            t = (n - 1) // 2
        inputs = split(n)
        for _ in range(trials):
            specs.append(TrialSpec(
                protocol="ben-or", adversary="crash-split-vote",
                n=n, t=t, inputs=tuple(inputs),
                adversary_kwargs=_seeded_kwargs(rng),
                seed=rng.getrandbits(32), max_windows=max_windows,
                stop_when="first", tag=("E4", n)))
        cells.append({"n": n, "t": t})
    grouped = group_by_tag(specs, run_trials(specs, workers=workers))
    rows: List[Dict] = []
    means: List[float] = []
    used_ns: List[int] = []
    for cell in cells:
        n, t = cell["n"], cell["t"]
        results = grouped[("E4", n)]
        chains = measure(results, message_chain_length)
        windows = measure(results, windows_to_first_decision)
        chain_summary = summarize_trials(chains)
        means.append(chain_summary.mean)
        used_ns.append(n)
        rows.append({
            "experiment": "E4",
            "protocol": "ben-or",
            "n": n,
            "t": t,
            "trials": trials,
            "mean_message_chain": chain_summary.mean,
            "max_message_chain": chain_summary.maximum,
            "mean_windows": sum(windows) / len(windows),
            "forgetful": BenOrAgreement.forgetful,
            "fully_communicative": BenOrAgreement.fully_communicative,
            "fit_growth_rate_per_processor": None,
            "fit_r_squared": None,
        })
    if len(means) >= 2:
        fit = fit_exponential(used_ns, means)
        rows.append({
            "experiment": "E4-fit",
            "protocol": "ben-or",
            "n": None,
            "t": None,
            "trials": trials,
            "mean_message_chain": None,
            "max_message_chain": None,
            "mean_windows": None,
            "forgetful": True,
            "fully_communicative": True,
            "fit_growth_rate_per_processor": fit.b,
            "fit_r_squared": fit.r_squared,
        })
    return rows


# ----------------------------------------------------------------------
# E5: contrast with committee election (fast but non-adaptive, fallible).
# ----------------------------------------------------------------------
def run_committee_experiment(ns: Sequence[int] = (32, 64, 128),
                             trials: int = 40,
                             fault_fraction: float = 0.2,
                             seed: int = 0) -> List[Dict]:
    """Committee election versus the adaptive-safe algorithm (E5)."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    for n in ns:
        t = max(1, int(fault_fraction * n))
        protocol = CommitteeElectionProtocol(n=n, t=t)
        inputs = split(n)
        nonadaptive_failures = failure_rate(protocol, inputs, trials=trials,
                                            adaptive=False,
                                            seed=rng.getrandbits(32))
        adaptive_failures = failure_rate(protocol, inputs, trials=trials,
                                         adaptive=True,
                                         seed=rng.getrandbits(32))
        sample = protocol.run(inputs, adaptive=False,
                              seed=rng.getrandbits(32))
        # The adaptive-safe alternative: the reset-tolerant algorithm's
        # analytic expected windows at the Theorem 4 fault bound.
        rt_t = max_tolerable_t(n)
        analytic_windows = (split_vote_analysis(default_thresholds(n, rt_t))
                            .expected_windows if rt_t > 0 else float("nan"))
        rows.append({
            "experiment": "E5",
            "n": n,
            "t": t,
            "committee_size": protocol.committee_size,
            "committee_rounds": sample.communication_rounds,
            "committee_layers": sample.layers,
            "nonadaptive_failure_rate": nonadaptive_failures,
            "adaptive_failure_rate": adaptive_failures,
            "adaptive_safe_expected_windows": analytic_windows,
        })
    return rows


# ----------------------------------------------------------------------
# E6: baseline protocols at their classical resilience bounds.
# ----------------------------------------------------------------------
def run_baseline_experiment(ben_or_ns: Sequence[int] = (9, 15),
                            bracha_ns: Sequence[int] = (7, 10),
                            trials: int = 3,
                            max_windows: int = 5000,
                            max_steps: int = 400000,
                            seed: int = 0,
                            workers: Optional[int] = None) -> List[Dict]:
    """Ben-Or under crash failures and Bracha under Byzantine failures (E6)."""
    rng = random.Random(seed)
    specs: List[TrialSpec] = []
    cells: List[Dict] = []
    for n in ben_or_ns:
        t = (n - 1) // 2
        adversaries = (
            ("benign", "benign", None),
            ("crash-at-start", "static-crash",
             lambda rng, t=t: {"crash_schedule": {0: tuple(range(t))}}),
            ("crash-at-decision", "crash-at-decision", None),
            ("random", "random-scheduler", _seeded_kwargs),
        )
        for workload_name, inputs in (("split", split(n)),
                                      ("unanimous-1", unanimous(n, 1))):
            for display_name, adversary, kwargs_builder in adversaries:
                tag = ("E6", "ben-or", n, workload_name, display_name)
                for _ in range(trials):
                    specs.append(TrialSpec(
                        protocol="ben-or", adversary=adversary,
                        n=n, t=t, inputs=tuple(inputs),
                        adversary_kwargs=(kwargs_builder(rng)
                                          if kwargs_builder else {}),
                        seed=rng.getrandbits(32), max_windows=max_windows,
                        stop_when="all", tag=tag))
                cells.append({"tag": tag, "protocol": "ben-or", "n": n,
                              "t": t, "workload": workload_name,
                              "adversary": display_name})
    for n in bracha_ns:
        t = (n - 1) // 3
        for workload_name, inputs in (("split", split(n)),
                                      ("unanimous-0", unanimous(n, 0))):
            for strategy_name in ("silent", "flip", "equivocate",
                                  "random-values"):
                tag = ("E6", "bracha", n, workload_name, strategy_name)
                for _ in range(trials):
                    engine_seed = rng.getrandbits(32)
                    specs.append(TrialSpec(
                        protocol="bracha", adversary="byzantine",
                        n=n, t=t, inputs=tuple(inputs), seed=engine_seed,
                        adversary_kwargs={"corrupted": tuple(range(t)),
                                          "strategy": strategy_name,
                                          "seed": rng.getrandbits(32)},
                        engine="step", max_steps=max_steps,
                        stop_when="all", tag=tag))
                cells.append({"tag": tag, "protocol": "bracha", "n": n,
                              "t": t, "workload": workload_name,
                              "adversary": strategy_name})
    grouped = group_by_tag(specs, run_trials(specs, workers=workers))
    rows: List[Dict] = []
    for cell in cells:
        results = grouped[cell["tag"]]
        if cell["protocol"] == "ben-or":
            agreement_ok, validity_ok, terminated = correctness_flags(results)
            windows_used = [result.windows_elapsed for result in results]
            mean_windows: Optional[float] = \
                sum(windows_used) / len(windows_used)
        else:
            # Byzantine runs judge correctness over the honest processors
            # only: corrupted ones may "decide" anything.
            t = cell["t"]
            agreement_ok = validity_ok = terminated = True
            mean_windows = None
            for result in results:
                honest = range(t, result.n)
                honest_outputs = {result.outputs[pid] for pid in honest}
                honest_values = {value for value in honest_outputs
                                 if value is not None}
                honest_inputs = {result.inputs[pid] for pid in honest}
                agreement_ok &= len(honest_values) <= 1
                validity_ok &= honest_values.issubset(honest_inputs) \
                    or not honest_values
                terminated &= None not in honest_outputs
        rows.append({
            "experiment": "E6",
            "protocol": cell["protocol"],
            "n": cell["n"],
            "t": cell["t"],
            "workload": cell["workload"],
            "adversary": cell["adversary"],
            "agreement_ok": agreement_ok,
            "validity_ok": validity_ok,
            "terminated": terminated,
            "mean_windows": mean_windows,
        })
    return rows


# ----------------------------------------------------------------------
# E7: threshold ablation.
# ----------------------------------------------------------------------
def run_threshold_ablation(n: int = 24, trials: int = 4,
                           max_windows: int = 3000,
                           seed: int = 0,
                           workers: Optional[int] = None) -> List[Dict]:
    """Effect of violating each Theorem 4 threshold constraint (E7)."""
    rng = random.Random(seed)
    t = max_tolerable_t(n)
    specs: List[TrialSpec] = []
    cells: List[Dict] = []
    # The grid can contain duplicate (T1, T2, T3) configurations, so the
    # tag carries the grid index to keep their cells separate.
    for config_index, config in enumerate(threshold_grid(n, t)):
        for adversary in ("split-vote", "polarizing", "adaptive-resetting"):
            tag = ("E7", config_index, adversary)
            for _ in range(trials):
                specs.append(TrialSpec(
                    protocol="reset-tolerant", adversary=adversary,
                    n=n, t=t, inputs=tuple(split(n)),
                    adversary_kwargs=_seeded_kwargs(rng),
                    protocol_kwargs={"thresholds": config,
                                     "validate_thresholds": False},
                    seed=rng.getrandbits(32), max_windows=max_windows,
                    stop_when="all", tag=tag))
            cells.append({"tag": tag, "config": config,
                          "adversary": adversary})
    grouped = group_by_tag(specs, run_trials(specs, workers=workers))
    rows: List[Dict] = []
    for cell in cells:
        config = cell["config"]
        results = grouped[cell["tag"]]
        violations = config.violations()
        agreement_ok, validity_ok, _ = correctness_flags(results)
        windows_used = [result.windows_elapsed for result in results]
        rows.append({
            "experiment": "E7",
            "n": n,
            "t": t,
            "T1": config.t1,
            "T2": config.t2,
            "T3": config.t3,
            "constraints_ok": config.valid,
            "violated": "; ".join(violations) if violations else "-",
            "adversary": cell["adversary"],
            "agreement_ok": agreement_ok,
            "validity_ok": validity_ok,
            "decided_runs": sum(int(result.decided) for result in results),
            "trials": trials,
            "mean_windows": sum(windows_used) / len(windows_used),
        })
    return rows


# ----------------------------------------------------------------------
# E8: lower-bound constants and Talagrand spot checks.
# ----------------------------------------------------------------------
def run_constants_experiment(cs: Sequence[float] = (0.05, 0.1, 1.0 / 6.0),
                             ns: Sequence[int] = (50, 100, 200, 400),
                             seed: int = 0) -> List[Dict]:
    """Theorem 5 constants and a numerical Talagrand verification (E8)."""
    rows: List[Dict] = []
    for c in cs:
        constants = lower_bound_constants(c)
        for n in ns:
            rows.append({
                "experiment": "E8",
                "c": round(c, 4),
                "n": n,
                "alpha": constants.alpha,
                "C": constants.big_c,
                "predicted_windows": constants.predicted_windows(n),
                "success_probability": constants.success_probability(n),
                "set": None,
                "radius": None,
                "P[A]*(1-P[B(A,d)])": None,
                "talagrand_bound": None,
                "inequality_holds": None,
            })
    # Talagrand spot check on a concrete product space: n fair coins, the
    # set A of points with at most k ones, radius d.
    rng = random.Random(seed)
    for n, k, d in ((10, 2, 3), (11, 3, 4), (12, 3, 4)):
        distribution = ProductDistribution.uniform_bits(n)
        points = [point for point, _ in distribution.enumerate_support()
                  if sum(point) <= k]
        check = verify_talagrand(distribution, points, radius=d, exact=True)
        rows.append({
            "experiment": "E8-talagrand",
            "c": None,
            "n": n,
            "alpha": None,
            "C": None,
            "predicted_windows": None,
            "success_probability": None,
            "set": f"at most {k} ones",
            "radius": d,
            "P[A]*(1-P[B(A,d)])": check.product,
            "talagrand_bound": check.bound,
            "inequality_holds": check.satisfied,
        })
    return rows


__all__ = [
    "run_feasibility_experiment",
    "run_exponential_rounds_experiment",
    "run_lower_bound_experiment",
    "run_crash_forgetful_experiment",
    "run_committee_experiment",
    "run_baseline_experiment",
    "run_threshold_ablation",
    "run_constants_experiment",
]
