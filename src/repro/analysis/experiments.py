"""Experiment runners: one function per experiment in EXPERIMENTS.md.

Every function returns a list of flat dictionaries (table rows).  The
benchmark harness wraps these functions with pytest-benchmark; the examples
print them with :func:`repro.analysis.statistics.format_table`.  Trial
counts and system sizes are parameters so that quick smoke runs and full
reproductions use the same code path.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.adversaries.benign import (BenignAdversary,
                                      RandomSchedulerAdversary,
                                      SilencingAdversary)
from repro.adversaries.byzantine import (ByzantineAdversary,
                                         EquivocateStrategy,
                                         FlipValueStrategy,
                                         RandomValueStrategy, SilentStrategy)
from repro.adversaries.crash import (CrashAtDecisionAdversary,
                                     CrashSplitVoteAdversary,
                                     StaticCrashAdversary)
from repro.adversaries.polarizing import PolarizingAdversary
from repro.adversaries.split_vote import (AdaptiveResettingAdversary,
                                          SplitVoteAdversary)
from repro.core.analysis import split_vote_analysis
from repro.core.lower_bound import lower_bound_report
from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.core.talagrand import lower_bound_constants
from repro.core.thresholds import (ThresholdConfig, default_thresholds,
                                   max_tolerable_t, threshold_grid)
from repro.analysis.product_measure import (ProductDistribution,
                                            verify_talagrand)
from repro.analysis.statistics import (fit_exponential, summarize_trials)
from repro.protocols.base import ProtocolFactory
from repro.protocols.ben_or import BenOrAgreement
from repro.protocols.bracha import BrachaAgreement
from repro.protocols.committee import CommitteeElectionProtocol, failure_rate
from repro.simulation.engine import StepEngine
from repro.simulation.windows import WindowEngine, run_execution
from repro.workloads.inputs import split, standard_workloads, unanimous


# ----------------------------------------------------------------------
# E1: Theorem 4 feasibility — correctness and termination sweep.
# ----------------------------------------------------------------------
def run_feasibility_experiment(ns: Sequence[int] = (12, 18, 24),
                               trials: int = 3,
                               max_windows: int = 60000,
                               seed: int = 0) -> List[Dict]:
    """Correctness/termination of the reset-tolerant algorithm (E1).

    For every ``n`` (with ``t`` the largest value admitted by Theorem 4),
    every standard workload and a battery of strongly adaptive adversaries,
    runs several executions and reports whether agreement, validity and
    termination held.
    """
    rng = random.Random(seed)
    rows: List[Dict] = []
    for n in ns:
        t = max_tolerable_t(n)
        adversaries = {
            "benign": lambda: BenignAdversary(),
            "random": lambda: RandomSchedulerAdversary(
                seed=rng.getrandbits(32), reset_probability=0.5),
            "silencing": lambda: SilencingAdversary(),
            "split-vote": lambda: SplitVoteAdversary(
                seed=rng.getrandbits(32)),
            "adaptive-resetting": lambda: AdaptiveResettingAdversary(
                seed=rng.getrandbits(32)),
        }
        for workload_name, inputs in standard_workloads(
                n, seed=rng.getrandbits(32)).items():
            for adversary_name, adversary_factory in adversaries.items():
                agreement_ok = True
                validity_ok = True
                terminated = True
                windows_used: List[int] = []
                for _ in range(trials):
                    result = run_execution(
                        ResetTolerantAgreement, n=n, t=t, inputs=inputs,
                        adversary=adversary_factory(),
                        max_windows=max_windows,
                        seed=rng.getrandbits(32), stop_when="all")
                    agreement_ok &= result.agreement_ok
                    validity_ok &= result.validity_ok
                    terminated &= result.all_live_decided
                    windows_used.append(result.windows_elapsed)
                rows.append({
                    "experiment": "E1",
                    "n": n,
                    "t": t,
                    "workload": workload_name,
                    "adversary": adversary_name,
                    "agreement_ok": agreement_ok,
                    "validity_ok": validity_ok,
                    "terminated": terminated,
                    "mean_windows": sum(windows_used) / len(windows_used),
                    "max_windows_observed": max(windows_used),
                })
    return rows


# ----------------------------------------------------------------------
# E2: exponential running time against the split-vote adversary.
# ----------------------------------------------------------------------
def run_exponential_rounds_experiment(ns: Sequence[int] = (12, 16, 20, 24),
                                      trials: int = 5,
                                      max_windows: int = 200000,
                                      use_resets: bool = True,
                                      seed: int = 0) -> List[Dict]:
    """Windows until first decision under the blocking adversary (E2).

    Also reports the analytic prediction of
    :func:`repro.core.analysis.split_vote_analysis` and, in the final
    synthetic row, the exponential fit of measured means against ``n``.
    """
    rng = random.Random(seed)
    rows: List[Dict] = []
    means: List[float] = []
    used_ns: List[int] = []
    for n in ns:
        t = max_tolerable_t(n)
        if t == 0:
            continue
        thresholds = default_thresholds(n, t)
        analytic = split_vote_analysis(thresholds)
        inputs = split(n)
        windows: List[float] = []
        unanimous_windows: List[float] = []
        for _ in range(trials):
            adversary = (AdaptiveResettingAdversary(seed=rng.getrandbits(32))
                         if use_resets
                         else SplitVoteAdversary(seed=rng.getrandbits(32)))
            result = run_execution(
                ResetTolerantAgreement, n=n, t=t, inputs=inputs,
                adversary=adversary, max_windows=max_windows,
                seed=rng.getrandbits(32), stop_when="first")
            windows.append(result.first_decision_window
                           or result.windows_elapsed)
            unanimous_result = run_execution(
                ResetTolerantAgreement, n=n, t=t, inputs=unanimous(n, 1),
                adversary=SplitVoteAdversary(seed=rng.getrandbits(32)),
                max_windows=max_windows, seed=rng.getrandbits(32),
                stop_when="first")
            unanimous_windows.append(
                unanimous_result.first_decision_window
                or unanimous_result.windows_elapsed)
        summary = summarize_trials(windows)
        means.append(summary.mean)
        used_ns.append(n)
        rows.append({
            "experiment": "E2",
            "n": n,
            "t": t,
            "inputs": "split",
            "trials": trials,
            "mean_windows": summary.mean,
            "median_windows": summary.median,
            "max_windows": summary.maximum,
            "analytic_expected_windows": analytic.expected_windows,
            "unanimous_mean_windows":
                sum(unanimous_windows) / len(unanimous_windows),
            "fit_growth_rate_per_processor": None,
            "fit_r_squared": None,
        })
    if len(means) >= 2:
        fit = fit_exponential(used_ns, means)
        rows.append({
            "experiment": "E2-fit",
            "n": None,
            "t": None,
            "inputs": "split",
            "trials": trials,
            "mean_windows": None,
            "median_windows": None,
            "max_windows": None,
            "analytic_expected_windows": None,
            "unanimous_mean_windows": None,
            "fit_growth_rate_per_processor": fit.b,
            "fit_r_squared": fit.r_squared,
        })
    return rows


# ----------------------------------------------------------------------
# E3: lower-bound machinery checks (Lemmas 9, 11, 14 and Theorem 5 inputs).
# ----------------------------------------------------------------------
def run_lower_bound_experiment(ns: Sequence[int] = (8, 12),
                               samples: int = 6,
                               separation_trials: int = 8,
                               seed: int = 0) -> List[Dict]:
    """Numerical checks of the Theorem 5 machinery at small ``n`` (E3)."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    for n in ns:
        t = max_tolerable_t(n)
        if t == 0:
            continue
        report = lower_bound_report(
            ResetTolerantAgreement, n=n, t=t, samples=samples,
            separation_trials=separation_trials, seed=rng.getrandbits(32))
        rows.append({
            "experiment": "E3",
            "n": n,
            "t": t,
            "decision_set_min_distance": report.separation.min_distance,
            "required_separation": report.separation.required,
            "separation_holds": report.separation.satisfied,
            "tau": report.tau,
            "hybrid_best_j": report.hybrid_best.j,
            "hybrid_best_worst_probability": report.hybrid_best.worst,
            "endpoint_worst_probability": report.endpoint_worst,
            "balanced_inputs_ones": sum(report.balanced_inputs.inputs),
            "balanced_zero_probability":
                report.balanced_inputs.zero_probability,
            "balanced_one_probability":
                report.balanced_inputs.one_probability,
        })
    return rows


# ----------------------------------------------------------------------
# E4: crash-model lower bound on forgetful, fully communicative algorithms.
# ----------------------------------------------------------------------
def run_crash_forgetful_experiment(ns: Sequence[int] = (9, 13, 17, 21),
                                   trials: int = 10,
                                   fault_fraction: float = 0.25,
                                   max_windows: int = 200000,
                                   seed: int = 0) -> List[Dict]:
    """Message-chain length of Ben-Or under the crash-model adversary (E4)."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    means: List[float] = []
    used_ns: List[int] = []
    for n in ns:
        t = max(1, int(fault_fraction * n))
        if t >= n / 2:
            t = (n - 1) // 2
        inputs = split(n)
        chains: List[float] = []
        windows: List[float] = []
        for _ in range(trials):
            result = run_execution(
                BenOrAgreement, n=n, t=t, inputs=inputs,
                adversary=CrashSplitVoteAdversary(seed=rng.getrandbits(32)),
                max_windows=max_windows, seed=rng.getrandbits(32),
                stop_when="first")
            chain = result.message_chain_length
            if chain is None:
                chain = result.windows_elapsed
            chains.append(chain)
            windows.append(result.first_decision_window
                           or result.windows_elapsed)
        chain_summary = summarize_trials(chains)
        means.append(chain_summary.mean)
        used_ns.append(n)
        rows.append({
            "experiment": "E4",
            "protocol": "ben-or",
            "n": n,
            "t": t,
            "trials": trials,
            "mean_message_chain": chain_summary.mean,
            "max_message_chain": chain_summary.maximum,
            "mean_windows": sum(windows) / len(windows),
            "forgetful": BenOrAgreement.forgetful,
            "fully_communicative": BenOrAgreement.fully_communicative,
            "fit_growth_rate_per_processor": None,
            "fit_r_squared": None,
        })
    if len(means) >= 2:
        fit = fit_exponential(used_ns, means)
        rows.append({
            "experiment": "E4-fit",
            "protocol": "ben-or",
            "n": None,
            "t": None,
            "trials": trials,
            "mean_message_chain": None,
            "max_message_chain": None,
            "mean_windows": None,
            "forgetful": True,
            "fully_communicative": True,
            "fit_growth_rate_per_processor": fit.b,
            "fit_r_squared": fit.r_squared,
        })
    return rows


# ----------------------------------------------------------------------
# E5: contrast with committee election (fast but non-adaptive, fallible).
# ----------------------------------------------------------------------
def run_committee_experiment(ns: Sequence[int] = (32, 64, 128),
                             trials: int = 40,
                             fault_fraction: float = 0.2,
                             seed: int = 0) -> List[Dict]:
    """Committee election versus the adaptive-safe algorithm (E5)."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    for n in ns:
        t = max(1, int(fault_fraction * n))
        protocol = CommitteeElectionProtocol(n=n, t=t)
        inputs = split(n)
        nonadaptive_failures = failure_rate(protocol, inputs, trials=trials,
                                            adaptive=False,
                                            seed=rng.getrandbits(32))
        adaptive_failures = failure_rate(protocol, inputs, trials=trials,
                                         adaptive=True,
                                         seed=rng.getrandbits(32))
        sample = protocol.run(inputs, adaptive=False,
                              seed=rng.getrandbits(32))
        # The adaptive-safe alternative: the reset-tolerant algorithm's
        # analytic expected windows at the Theorem 4 fault bound.
        rt_t = max_tolerable_t(n)
        analytic_windows = (split_vote_analysis(default_thresholds(n, rt_t))
                            .expected_windows if rt_t > 0 else float("nan"))
        rows.append({
            "experiment": "E5",
            "n": n,
            "t": t,
            "committee_size": protocol.committee_size,
            "committee_rounds": sample.communication_rounds,
            "committee_layers": sample.layers,
            "nonadaptive_failure_rate": nonadaptive_failures,
            "adaptive_failure_rate": adaptive_failures,
            "adaptive_safe_expected_windows": analytic_windows,
        })
    return rows


# ----------------------------------------------------------------------
# E6: baseline protocols at their classical resilience bounds.
# ----------------------------------------------------------------------
def run_baseline_experiment(ben_or_ns: Sequence[int] = (9, 15),
                            bracha_ns: Sequence[int] = (7, 10),
                            trials: int = 3,
                            max_windows: int = 5000,
                            max_steps: int = 400000,
                            seed: int = 0) -> List[Dict]:
    """Ben-Or under crash failures and Bracha under Byzantine failures (E6)."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    for n in ben_or_ns:
        t = (n - 1) // 2
        adversaries = {
            "benign": lambda: BenignAdversary(),
            "crash-at-start": lambda: StaticCrashAdversary(
                crash_schedule={0: tuple(range(t))}),
            "crash-at-decision": lambda: CrashAtDecisionAdversary(),
            "random": lambda: RandomSchedulerAdversary(
                seed=rng.getrandbits(32)),
        }
        for workload_name, inputs in (("split", split(n)),
                                      ("unanimous-1", unanimous(n, 1))):
            for adversary_name, adversary_factory in adversaries.items():
                agreement_ok = True
                validity_ok = True
                terminated = True
                windows_used = []
                for _ in range(trials):
                    result = run_execution(
                        BenOrAgreement, n=n, t=t, inputs=inputs,
                        adversary=adversary_factory(),
                        max_windows=max_windows, seed=rng.getrandbits(32),
                        stop_when="all")
                    agreement_ok &= result.agreement_ok
                    validity_ok &= result.validity_ok
                    terminated &= result.all_live_decided
                    windows_used.append(result.windows_elapsed)
                rows.append({
                    "experiment": "E6",
                    "protocol": "ben-or",
                    "n": n,
                    "t": t,
                    "workload": workload_name,
                    "adversary": adversary_name,
                    "agreement_ok": agreement_ok,
                    "validity_ok": validity_ok,
                    "terminated": terminated,
                    "mean_windows": sum(windows_used) / len(windows_used),
                })
    for n in bracha_ns:
        t = (n - 1) // 3
        strategies = {
            "silent": SilentStrategy,
            "flip": FlipValueStrategy,
            "equivocate": EquivocateStrategy,
            "random-values": RandomValueStrategy,
        }
        for workload_name, inputs in (("split", split(n)),
                                      ("unanimous-0", unanimous(n, 0))):
            for strategy_name, strategy_cls in strategies.items():
                agreement_ok = True
                validity_ok = True
                terminated = True
                for _ in range(trials):
                    factory = ProtocolFactory(BrachaAgreement, n=n, t=t)
                    engine = StepEngine(factory, inputs,
                                        seed=rng.getrandbits(32))
                    adversary = ByzantineAdversary(
                        corrupted=tuple(range(t)), strategy=strategy_cls(),
                        seed=rng.getrandbits(32))
                    result = engine.run(adversary, max_steps=max_steps,
                                        stop_when="all")
                    honest = [pid for pid in range(n) if pid >= t]
                    honest_outputs = {result.outputs[pid] for pid in honest}
                    honest_decided = None not in honest_outputs
                    honest_values = {value for value in honest_outputs
                                     if value is not None}
                    honest_inputs = {inputs[pid] for pid in honest}
                    agreement_ok &= len(honest_values) <= 1
                    validity_ok &= honest_values.issubset(honest_inputs) \
                        or not honest_values
                    terminated &= honest_decided
                rows.append({
                    "experiment": "E6",
                    "protocol": "bracha",
                    "n": n,
                    "t": t,
                    "workload": workload_name,
                    "adversary": strategy_name,
                    "agreement_ok": agreement_ok,
                    "validity_ok": validity_ok,
                    "terminated": terminated,
                    "mean_windows": None,
                })
    return rows


# ----------------------------------------------------------------------
# E7: threshold ablation.
# ----------------------------------------------------------------------
def run_threshold_ablation(n: int = 24, trials: int = 4,
                           max_windows: int = 3000,
                           seed: int = 0) -> List[Dict]:
    """Effect of violating each Theorem 4 threshold constraint (E7)."""
    rng = random.Random(seed)
    t = max_tolerable_t(n)
    rows: List[Dict] = []
    for config in threshold_grid(n, t):
        violations = config.violations()
        adversaries = {
            "split-vote": lambda: SplitVoteAdversary(
                seed=rng.getrandbits(32)),
            "polarizing": lambda: PolarizingAdversary(
                seed=rng.getrandbits(32)),
            "adaptive-resetting": lambda: AdaptiveResettingAdversary(
                seed=rng.getrandbits(32)),
        }
        for adversary_name, adversary_factory in adversaries.items():
            agreement_ok = True
            validity_ok = True
            decided_runs = 0
            windows_used = []
            for _ in range(trials):
                result = run_execution(
                    ResetTolerantAgreement, n=n, t=t, inputs=split(n),
                    adversary=adversary_factory(), max_windows=max_windows,
                    seed=rng.getrandbits(32), stop_when="all",
                    thresholds=config, validate_thresholds=False)
                agreement_ok &= result.agreement_ok
                validity_ok &= result.validity_ok
                decided_runs += int(result.decided)
                windows_used.append(result.windows_elapsed)
            rows.append({
                "experiment": "E7",
                "n": n,
                "t": t,
                "T1": config.t1,
                "T2": config.t2,
                "T3": config.t3,
                "constraints_ok": config.valid,
                "violated": "; ".join(violations) if violations else "-",
                "adversary": adversary_name,
                "agreement_ok": agreement_ok,
                "validity_ok": validity_ok,
                "decided_runs": decided_runs,
                "trials": trials,
                "mean_windows": sum(windows_used) / len(windows_used),
            })
    return rows


# ----------------------------------------------------------------------
# E8: lower-bound constants and Talagrand spot checks.
# ----------------------------------------------------------------------
def run_constants_experiment(cs: Sequence[float] = (0.05, 0.1, 1.0 / 6.0),
                             ns: Sequence[int] = (50, 100, 200, 400),
                             seed: int = 0) -> List[Dict]:
    """Theorem 5 constants and a numerical Talagrand verification (E8)."""
    rows: List[Dict] = []
    for c in cs:
        constants = lower_bound_constants(c)
        for n in ns:
            rows.append({
                "experiment": "E8",
                "c": round(c, 4),
                "n": n,
                "alpha": constants.alpha,
                "C": constants.big_c,
                "predicted_windows": constants.predicted_windows(n),
                "success_probability": constants.success_probability(n),
                "set": None,
                "radius": None,
                "P[A]*(1-P[B(A,d)])": None,
                "talagrand_bound": None,
                "inequality_holds": None,
            })
    # Talagrand spot check on a concrete product space: n fair coins, the
    # set A of points with at most k ones, radius d.
    rng = random.Random(seed)
    for n, k, d in ((10, 2, 3), (11, 3, 4), (12, 3, 4)):
        distribution = ProductDistribution.uniform_bits(n)
        points = [point for point, _ in distribution.enumerate_support()
                  if sum(point) <= k]
        check = verify_talagrand(distribution, points, radius=d, exact=True)
        rows.append({
            "experiment": "E8-talagrand",
            "c": None,
            "n": n,
            "alpha": None,
            "C": None,
            "predicted_windows": None,
            "success_probability": None,
            "set": f"at most {k} ones",
            "radius": d,
            "P[A]*(1-P[B(A,d)])": check.product,
            "talagrand_bound": check.bound,
            "inequality_holds": check.satisfied,
        })
    return rows


__all__ = [
    "run_feasibility_experiment",
    "run_exponential_rounds_experiment",
    "run_lower_bound_experiment",
    "run_crash_forgetful_experiment",
    "run_committee_experiment",
    "run_baseline_experiment",
    "run_threshold_ablation",
    "run_constants_experiment",
]
