"""Reliable-broadcast substrate used by Bracha's agreement protocol."""

from repro.broadcast.bracha_broadcast import (RBC_ECHO, RBC_INIT, RBC_READY,
                                              Acceptance, BroadcastInstance,
                                              ReliableBroadcastLayer)

__all__ = [
    "RBC_INIT",
    "RBC_ECHO",
    "RBC_READY",
    "Acceptance",
    "BroadcastInstance",
    "ReliableBroadcastLayer",
]
