"""Bracha's reliable broadcast (the substrate of his agreement protocol).

Bracha's 1984 asynchronous agreement protocol achieves the optimal
resilience ``t < n/3`` against Byzantine failures by filtering every value
through a *reliable broadcast* primitive: a Byzantine sender cannot make two
honest processors accept different values from the same broadcast, and if
the sender is honest every honest processor eventually accepts its value.

The classic echo/ready implementation, per broadcast instance (identified by
the originator and an application-level tag such as ``(round, phase)``):

* the originator sends ``INIT v`` to everyone;
* on receiving the first ``INIT v`` from the originator, a processor sends
  ``ECHO v`` to everyone;
* on receiving ``ECHO v`` from more than ``(n + t) / 2`` distinct
  processors, or ``READY v`` from ``t + 1`` distinct processors, a processor
  sends ``READY v`` (once);
* on receiving ``READY v`` from ``2t + 1`` distinct processors, it *accepts*
  (delivers) ``v`` for this instance.

This module implements the per-processor state machine
(:class:`BroadcastInstance`) and a manager (:class:`ReliableBroadcastLayer`)
that multiplexes many concurrent instances, producing outgoing payloads and
reporting accepted deliveries to the protocol that uses it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

RBC_INIT = "RBC_INIT"
"""Payload tag of the originator's initial send."""

RBC_ECHO = "RBC_ECHO"
"""Payload tag of echo messages."""

RBC_READY = "RBC_READY"
"""Payload tag of ready messages."""


@dataclass
class Acceptance:
    """A value accepted (delivered) by the reliable-broadcast layer.

    Attributes:
        originator: the processor whose broadcast was accepted.
        tag: the application-level instance tag (e.g. ``(round, phase)``).
        value: the accepted value.
    """

    originator: int
    tag: Hashable
    value: Any


class BroadcastInstance:
    """One processor's view of a single reliable-broadcast instance."""

    def __init__(self, n: int, t: int, originator: int,
                 tag: Hashable) -> None:
        self.n = n
        self.t = t
        self.originator = originator
        self.tag = tag
        self.echo_sent = False
        self.ready_sent = False
        self.accepted_value: Optional[Any] = None
        self._echoes: Dict[Any, Set[int]] = defaultdict(set)
        self._readies: Dict[Any, Set[int]] = defaultdict(set)

    # Quorum sizes from Bracha's protocol.
    @property
    def echo_quorum(self) -> int:
        """Echoes needed before sending READY: strictly more than (n+t)/2."""
        return (self.n + self.t) // 2 + 1

    @property
    def ready_amplify(self) -> int:
        """Readies from distinct processors that trigger our own READY."""
        return self.t + 1

    @property
    def accept_quorum(self) -> int:
        """Readies needed to accept the value."""
        return 2 * self.t + 1

    # ------------------------------------------------------------------
    def on_init(self, sender: int, value: Any) -> List[Tuple[str, Any]]:
        """Handle the originator's INIT; returns payload actions to send."""
        actions: List[Tuple[str, Any]] = []
        if sender != self.originator:
            return actions
        if not self.echo_sent:
            self.echo_sent = True
            actions.append((RBC_ECHO, value))
        return actions

    def on_echo(self, sender: int, value: Any) -> List[Tuple[str, Any]]:
        """Handle an ECHO from ``sender``; returns payload actions to send."""
        actions: List[Tuple[str, Any]] = []
        self._echoes[value].add(sender)
        if not self.ready_sent and \
                len(self._echoes[value]) >= self.echo_quorum:
            self.ready_sent = True
            actions.append((RBC_READY, value))
        return actions

    def on_ready(self, sender: int, value: Any) -> List[Tuple[str, Any]]:
        """Handle a READY from ``sender``; returns payload actions to send."""
        actions: List[Tuple[str, Any]] = []
        self._readies[value].add(sender)
        if not self.ready_sent and \
                len(self._readies[value]) >= self.ready_amplify:
            self.ready_sent = True
            actions.append((RBC_READY, value))
        if self.accepted_value is None and \
                len(self._readies[value]) >= self.accept_quorum:
            self.accepted_value = value
        return actions

    def state_view(self) -> Tuple:
        """Hashable snapshot for configuration fingerprints."""
        echoes = tuple(sorted(((value, tuple(sorted(senders)))
                               for value, senders in self._echoes.items()),
                              key=repr))
        readies = tuple(sorted(((value, tuple(sorted(senders)))
                                for value, senders in self._readies.items()),
                               key=repr))
        return (self.originator, self.tag, self.echo_sent, self.ready_sent,
                self.accepted_value, echoes, readies)


class ReliableBroadcastLayer:
    """Multiplexes concurrent reliable-broadcast instances for one processor.

    The owning protocol calls :meth:`broadcast` to start its own broadcasts,
    feeds every incoming RBC payload to :meth:`handle`, periodically drains
    :meth:`take_outgoing` into its own outbox, and consumes accepted values
    from :meth:`take_acceptances`.
    """

    def __init__(self, pid: int, n: int, t: int) -> None:
        self.pid = pid
        self.n = n
        self.t = t
        self._instances: Dict[Tuple[int, Hashable], BroadcastInstance] = {}
        self._outgoing: List[Tuple[str, int, Hashable, Any]] = []
        self._acceptances: List[Acceptance] = []
        self._delivered: Set[Tuple[int, Hashable]] = set()

    # ------------------------------------------------------------------
    def _instance(self, originator: int, tag: Hashable) -> BroadcastInstance:
        key = (originator, tag)
        if key not in self._instances:
            self._instances[key] = BroadcastInstance(self.n, self.t,
                                                     originator, tag)
        return self._instances[key]

    # ------------------------------------------------------------------
    def broadcast(self, tag: Hashable, value: Any) -> None:
        """Start a reliable broadcast of ``value`` under ``tag``."""
        self._outgoing.append((RBC_INIT, self.pid, tag, value))

    def handle(self, sender: int, payload: Any) -> List[Acceptance]:
        """Process one incoming RBC payload.

        Args:
            sender: the processor the message channel attributes it to.
            payload: a tuple ``(kind, originator, tag, value)`` where kind is
                one of the RBC tags.

        Returns:
            Newly accepted deliveries (at most one per call).
        """
        if not (isinstance(payload, tuple) and len(payload) == 4
                and payload[0] in (RBC_INIT, RBC_ECHO, RBC_READY)):
            return []
        kind, originator, tag, value = payload
        if not isinstance(originator, int) or not 0 <= originator < self.n:
            return []
        instance = self._instance(originator, tag)
        if kind == RBC_INIT:
            actions = instance.on_init(sender, value)
        elif kind == RBC_ECHO:
            actions = instance.on_echo(sender, value)
        else:
            actions = instance.on_ready(sender, value)
        for action_kind, action_value in actions:
            self._outgoing.append((action_kind, originator, tag,
                                   action_value))
        newly_accepted: List[Acceptance] = []
        key = (originator, tag)
        if instance.accepted_value is not None and key not in self._delivered:
            self._delivered.add(key)
            acceptance = Acceptance(originator=originator, tag=tag,
                                    value=instance.accepted_value)
            self._acceptances.append(acceptance)
            newly_accepted.append(acceptance)
        return newly_accepted

    def take_outgoing(self) -> List[Tuple[str, int, Hashable, Any]]:
        """Drain the queue of RBC payloads to broadcast to all processors."""
        outgoing = self._outgoing
        self._outgoing = []
        return outgoing

    def take_acceptances(self) -> List[Acceptance]:
        """Drain the list of accepted deliveries."""
        acceptances = self._acceptances
        self._acceptances = []
        return acceptances

    def state_view(self) -> Tuple:
        """Hashable snapshot for configuration fingerprints."""
        return tuple(sorted(
            ((key, instance.state_view())
             for key, instance in self._instances.items()),
            key=repr))


__all__ = [
    "RBC_INIT",
    "RBC_ECHO",
    "RBC_READY",
    "Acceptance",
    "BroadcastInstance",
    "ReliableBroadcastLayer",
]
