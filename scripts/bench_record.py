#!/usr/bin/env python
"""Record a benchmark-trajectory point and gate on regressions.

Runs the ``benchmarks/`` suite under pytest-benchmark with a JSON report,
distills the report into a compact ``BENCH_<n>.json`` file at the repo
root (the performance trajectory), and compares against the previous
``BENCH_*.json``: any benchmark whose mean grew by more than the allowed
regression factor (default 20%) fails the run with a non-zero exit code.

Usage::

    PYTHONPATH=src python scripts/bench_record.py [options] [pytest-args...]

Options:
    --index N          index for BENCH_<N>.json (default: previous + 1)
    --threshold PCT    allowed mean regression percentage (default: 20)
    --dry-run          run + compare but do not write the trajectory file
    pytest-args        forwarded to pytest (e.g. a benchmark file subset;
                       default: the whole benchmarks/ directory)

See PERFORMANCE.md for how this fits the baseline workflow.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_PATTERN = os.path.join(REPO_ROOT, "BENCH_*.json")


def find_previous() -> tuple:
    """(index, path) of the highest-numbered BENCH_<n>.json, or (None, None)."""
    best_index, best_path = None, None
    for path in glob.glob(BENCH_PATTERN):
        match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if match:
            index = int(match.group(1))
            if best_index is None or index > best_index:
                best_index, best_path = index, path
    return best_index, best_path


def run_benchmarks(pytest_args: list) -> dict:
    """Run pytest-benchmark and return the parsed JSON report."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        report_path = handle.name
    try:
        command = [
            sys.executable, "-m", "pytest",
            *(pytest_args or [os.path.join(REPO_ROOT, "benchmarks")]),
            "-q", "-p", "no:cacheprovider",
            f"--benchmark-json={report_path}",
        ]
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            print(f"benchmark run failed (pytest exit "
                  f"{completed.returncode})", file=sys.stderr)
            sys.exit(completed.returncode)
        with open(report_path) as report:
            return json.load(report)
    finally:
        os.unlink(report_path)


def distill(report: dict) -> dict:
    """Reduce a pytest-benchmark report to {benchmark name: stats}.

    Benchmarks that attach ``extra_info`` (e.g. the search campaign's
    candidate-evaluations/sec throughput) carry it into the trajectory
    file verbatim, so derived rates are tracked alongside wall times.
    """
    benchmarks = {}
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        entry = {
            "mean_seconds": stats.get("mean"),
            "stddev_seconds": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        }
        extra = bench.get("extra_info") or {}
        if extra:
            entry["extra_info"] = extra
        benchmarks[bench["fullname"]] = entry
    return benchmarks


def compare(previous: dict, current: dict, threshold_pct: float) -> list:
    """Benchmarks that regressed beyond the threshold.

    Two regression directions are gated:

    * ``mean_seconds`` growing (wall time, higher is worse);
    * any shared ``extra_info`` ``*_per_sec`` metric shrinking
      (throughput — ``candidate_evals_per_sec``, ``trials_per_sec`` —
      lower is worse).  Non-numeric and unshared ``extra_info`` keys are
      ignored, so benchmarks may attach arbitrary annotations.
    """
    regressions = []
    factor = 1.0 + threshold_pct / 100.0
    for name, stats in current.items():
        old = previous.get(name)
        if not old:
            continue
        old_mean = old.get("mean_seconds")
        new_mean = stats.get("mean_seconds")
        if old_mean and new_mean and new_mean > old_mean * factor:
            regressions.append(
                f"{name}: {old_mean:.4f}s -> {new_mean:.4f}s "
                f"(+{(new_mean / old_mean - 1) * 100:.1f}%)")
        old_extra = old.get("extra_info") or {}
        new_extra = stats.get("extra_info") or {}
        for key in sorted(set(old_extra) & set(new_extra)):
            if not key.endswith("_per_sec"):
                continue
            old_rate, new_rate = old_extra[key], new_extra[key]
            if not all(isinstance(rate, (int, float)) and rate > 0
                       for rate in (old_rate, new_rate)):
                continue
            if new_rate * factor < old_rate:
                regressions.append(
                    f"{name} [{key}]: {old_rate:.1f}/s -> "
                    f"{new_rate:.1f}/s "
                    f"({(new_rate / old_rate - 1) * 100:.1f}%)")
    return regressions


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        usage="%(prog)s [--index N] [--threshold PCT] [--dry-run] "
              "[pytest-args...]")
    parser.add_argument("--index", type=int, default=None)
    parser.add_argument("--threshold", type=float, default=20.0)
    parser.add_argument("--dry-run", action="store_true")
    args, pytest_args = parser.parse_known_args()

    previous_index, previous_path = find_previous()
    report = run_benchmarks(pytest_args)
    benchmarks = distill(report)
    if not benchmarks:
        print("no benchmarks were collected", file=sys.stderr)
        return 2

    regressions = []
    if previous_path:
        with open(previous_path) as handle:
            previous = json.load(handle)
        regressions = compare(previous.get("benchmarks", {}), benchmarks,
                              args.threshold)

    index = args.index
    if index is None:
        index = 1 if previous_index is None else previous_index + 1
    record = {
        "index": index,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "pytest_args": pytest_args,
        "machine": report.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw") or report.get("machine_info", {}).get("machine"),
        "benchmarks": benchmarks,
    }
    out_path = os.path.join(REPO_ROOT, f"BENCH_{index}.json")
    if args.dry_run:
        print(f"[dry-run] would write {out_path}")
    else:
        with open(out_path, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out_path} ({len(benchmarks)} benchmarks)")

    if regressions:
        print(f"\nREGRESSION versus {os.path.basename(previous_path)} "
              f"(>{args.threshold:.0f}% slower):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    if previous_path:
        print(f"no regressions versus {os.path.basename(previous_path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
