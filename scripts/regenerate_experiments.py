#!/usr/bin/env python3
"""Regenerate every EXPERIMENTS.md table and write them to results/.

A thin wrapper over the unified CLI: each experiment runs through
``python -m repro run`` (so rows land in the results store under
``results/`` and interrupted regenerations *resume* on the next
invocation), then the stored runs are rendered into one combined text
file.  Sizes are chosen so the full script completes in a few minutes on
a laptop.

Run with::

    python scripts/regenerate_experiments.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # pragma: no cover - environment-dependent
    sys.path.insert(0, _SRC)

from repro import cli
from repro.analysis.statistics import format_table
from repro.experiments import get_experiment
from repro.results import load_run, run_directory

# (experiment, master seed, full-size parameter overrides).  The seeds and
# the overrides reproduce this script's historical tables; quick mode uses
# each experiment's registered quick overrides unchanged.
PLANS = (
    ("E1", 1, {"max_windows": 6000}),
    ("E2", 2, {}),
    ("E3", 3, {"separation_trials": 10}),
    ("E4", 4, {"trials": 8}),
    ("E5", 5, {}),
    ("E6", 6, {"trials": 2}),
    ("E7", 7, {"trials": 3}),
    ("E8", 8, {}),
    ("E9", 9, {}),
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps (about a minute)")
    parser.add_argument("--store", default="results",
                        help="results-store root (default: results/)")
    parser.add_argument("--output", default="results/experiment_tables.txt")
    args = parser.parse_args()

    sections = []
    for name, seed, overrides in PLANS:
        experiment = get_experiment(name)
        applied = {} if args.quick else overrides
        argv = ["run", name, "--seed", str(seed), "--out", args.store]
        if args.quick:
            argv.append("--quick")
        for key, value in applied.items():
            argv.extend(["--set", f"{key}={value!r}"])
        exit_code = cli.main(argv)
        if exit_code != 0:
            return exit_code
        params = experiment.resolve_params(
            dict(applied, seed=seed), quick=args.quick)
        manifest, rows = load_run(
            run_directory(args.store, experiment.name, params))
        if experiment.finalize is not None:
            rows = rows + experiment.finalize(rows, manifest["params"])
        sections.append(
            f"== {experiment.name}: {experiment.title} "
            f"({manifest['wall_time_seconds']:.1f}s) ==\n"
            f"{format_table(rows)}\n")

    os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
    with open(args.output, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
