#!/usr/bin/env python3
"""Regenerate every EXPERIMENTS.md table and write them to results/.

This is the non-benchmark path to the experiment tables (the benchmark
suite runs the same functions under pytest-benchmark).  Sizes are chosen so
the full script completes in a few minutes on a laptop.

Run with::

    python scripts/regenerate_experiments.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.analysis.experiments import (run_baseline_experiment,
                                        run_committee_experiment,
                                        run_constants_experiment,
                                        run_crash_forgetful_experiment,
                                        run_exponential_rounds_experiment,
                                        run_feasibility_experiment,
                                        run_lower_bound_experiment,
                                        run_threshold_ablation)
from repro.analysis.statistics import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps (about a minute)")
    parser.add_argument("--output", default="results/experiment_tables.txt")
    args = parser.parse_args()

    if args.quick:
        plans = [
            ("E1", "Theorem 4 feasibility sweep",
             lambda: run_feasibility_experiment(ns=(12,), trials=1,
                                                max_windows=3000, seed=1)),
            ("E2", "Exponential windows vs n (split inputs)",
             lambda: run_exponential_rounds_experiment(ns=(12, 16), trials=3,
                                                       seed=2)),
            ("E3", "Lower-bound machinery checks",
             lambda: run_lower_bound_experiment(ns=(8,), samples=4,
                                                separation_trials=6, seed=3)),
            ("E4", "Crash-model message chains (Ben-Or)",
             lambda: run_crash_forgetful_experiment(ns=(9, 13), trials=4,
                                                    seed=4)),
            ("E5", "Committee election contrast",
             lambda: run_committee_experiment(ns=(32, 64), trials=25,
                                              seed=5)),
            ("E6", "Baselines (Ben-Or crash, Bracha Byzantine)",
             lambda: run_baseline_experiment(ben_or_ns=(9,), bracha_ns=(7,),
                                             trials=1, seed=6)),
            ("E7", "Threshold ablation",
             lambda: run_threshold_ablation(n=18, trials=2,
                                            max_windows=1200, seed=7)),
            ("E8", "Theorem 5 constants + Talagrand checks",
             lambda: run_constants_experiment(cs=(0.1, 1 / 6), ns=(50, 100),
                                              seed=8)),
        ]
    else:
        plans = [
            ("E1", "Theorem 4 feasibility sweep",
             lambda: run_feasibility_experiment(ns=(12, 18, 24), trials=3,
                                                max_windows=6000, seed=1)),
            ("E2", "Exponential windows vs n (split inputs)",
             lambda: run_exponential_rounds_experiment(ns=(12, 16, 20, 24),
                                                       trials=5, seed=2)),
            ("E3", "Lower-bound machinery checks",
             lambda: run_lower_bound_experiment(ns=(8, 12), samples=6,
                                                separation_trials=10,
                                                seed=3)),
            ("E4", "Crash-model message chains (Ben-Or)",
             lambda: run_crash_forgetful_experiment(ns=(9, 13, 17, 21),
                                                    trials=8, seed=4)),
            ("E5", "Committee election contrast",
             lambda: run_committee_experiment(ns=(32, 64, 128), trials=40,
                                              seed=5)),
            ("E6", "Baselines (Ben-Or crash, Bracha Byzantine)",
             lambda: run_baseline_experiment(ben_or_ns=(9, 15),
                                             bracha_ns=(7, 10), trials=2,
                                             seed=6)),
            ("E7", "Threshold ablation",
             lambda: run_threshold_ablation(n=24, trials=3,
                                            max_windows=3000, seed=7)),
            ("E8", "Theorem 5 constants + Talagrand checks",
             lambda: run_constants_experiment(seed=8)),
        ]

    os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
    sections = []
    for experiment_id, title, runner in plans:
        started = time.time()
        rows = runner()
        elapsed = time.time() - started
        table = format_table(rows)
        sections.append(f"== {experiment_id}: {title} "
                        f"({elapsed:.1f}s) ==\n{table}\n")
        print(sections[-1])
        sys.stdout.flush()
    with open(args.output, "w") as handle:
        handle.write("\n".join(sections))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
