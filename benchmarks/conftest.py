"""Benchmark-suite configuration.

Each benchmark module regenerates one experiment of EXPERIMENTS.md through
the experiment registry (:mod:`repro.experiments`).  The rows produced by
the most recent run of each benchmark are echoed to stdout (run pytest
with ``-s`` to see them) so the EXPERIMENTS.md tables can be refreshed
directly from a benchmark run.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # pragma: no cover - environment-dependent
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    # The benchmark suite lives outside testpaths; make sure pytest-benchmark
    # is present before collecting.
    pytest.importorskip("pytest_benchmark")


@pytest.fixture
def print_rows():
    """Print experiment rows as a table after the benchmark finishes."""
    from repro.analysis.statistics import format_table

    def _print(title, rows):
        print(f"\n=== {title} ===")
        print(format_table(rows))

    return _print
