"""Benchmark E5 — committee election versus the adaptive-safe algorithm.

Regenerates the contrast the paper draws in its introduction: Kapron-style
committee election finishes in polylogarithmically many rounds against a
non-adaptive adversary but fails almost surely against an adaptive one,
whereas the adaptive-safe threshold-voting algorithm needs exponentially
many windows.  Runs via the experiment registry.
"""

import pytest

from repro.experiments import get_experiment


@pytest.mark.benchmark(group="E5-committee")
def test_bench_committee_contrast(benchmark, print_rows):
    experiment = get_experiment("E5")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"ns": (32, 64, 128), "trials": 30,
                           "fault_fraction": 0.2, "seed": 6}},
        iterations=1, rounds=1)
    print_rows("E5: committee election vs adaptive-safe agreement", rows)
    for row in rows:
        assert row["adaptive_failure_rate"] >= 0.9
        assert row["nonadaptive_failure_rate"] <= row["adaptive_failure_rate"]
        assert row["committee_rounds"] < row["adaptive_safe_expected_windows"]
    # Committee rounds grow slowly (polylog) with n.
    assert rows[-1]["committee_rounds"] <= rows[0]["committee_rounds"] * 4
