"""Benchmark the contract linter (`repro.staticcheck`).

The CI ``lint`` job runs before the tier-1 suite on every push, so the
linter's wall time is part of every build's critical path.  This records
a full-tree ``run_lint`` pass and publishes the wall time as
``extra_info.lint_seconds`` (plus throughput in files/sec) so the
performance trajectory (`scripts/bench_record.py`, ``BENCH_<n>.json``)
catches a check whose cost grows superlinearly with the tree.
"""

import pytest

from repro.staticcheck import run_lint


@pytest.mark.benchmark(group="staticcheck")
def test_bench_lint_full_tree(benchmark):
    result = benchmark.pedantic(run_lint, iterations=1, rounds=5)

    benchmark.extra_info["lint_seconds"] = benchmark.stats.stats.mean
    benchmark.extra_info["files_scanned"] = result.files_scanned
    benchmark.extra_info["files_per_sec"] = \
        result.files_scanned / benchmark.stats.stats.mean
    assert result.ok, result.render_text()
