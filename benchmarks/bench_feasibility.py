"""Benchmark E1 — Theorem 4 feasibility sweep.

Regenerates the correctness/termination table of the reset-tolerant
algorithm against the strongly adaptive adversaries (benign, random,
silencing, split-vote, adaptive-resetting) across workloads, pulled from
the experiment registry.
"""

import pytest

from repro.experiments import get_experiment


@pytest.mark.benchmark(group="E1-feasibility")
def test_bench_feasibility_sweep(benchmark, print_rows):
    experiment = get_experiment("E1")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"ns": (12, 18), "trials": 2,
                           "max_windows": 4000, "seed": 1}},
        iterations=1, rounds=1)
    print_rows("E1: feasibility against the strongly adaptive adversary",
               rows)
    assert all(row["agreement_ok"] and row["validity_ok"]
               and row["terminated"] for row in rows)


@pytest.mark.benchmark(group="E1-feasibility")
def test_bench_feasibility_single_window_unanimous(benchmark):
    """Micro-benchmark: one full window of the reset-tolerant protocol."""
    from repro.adversaries.benign import BenignAdversary
    from repro.core.reset_tolerant import ResetTolerantAgreement
    from repro.simulation.windows import run_execution

    def run_once():
        return run_execution(ResetTolerantAgreement, n=24, t=3,
                             inputs=[1] * 24, adversary=BenignAdversary(),
                             max_windows=2, seed=3)

    result = benchmark(run_once)
    assert result.decided
