"""Benchmark E7 — threshold ablation for the Theorem 4 constraints.

Regenerates the table showing that the Theorem 4 threshold constraints are
necessary: valid settings never violate agreement or validity, while
selected violations lead to disagreement (under the polarizing adversary) or
to non-termination within the window budget.  Runs via the experiment
registry.
"""

import pytest

from repro.experiments import get_experiment


@pytest.mark.benchmark(group="E7-thresholds")
def test_bench_threshold_ablation(benchmark, print_rows):
    experiment = get_experiment("E7")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"n": 18, "trials": 2, "max_windows": 1500,
                           "seed": 8}},
        iterations=1, rounds=1)
    print_rows("E7: threshold ablation", rows)
    valid_rows = [row for row in rows if row["constraints_ok"]]
    invalid_rows = [row for row in rows if not row["constraints_ok"]]
    assert all(row["agreement_ok"] and row["validity_ok"]
               for row in valid_rows)
    assert any((not row["agreement_ok"]) or row["decided_runs"] == 0
               for row in invalid_rows)
