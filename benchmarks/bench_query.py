"""Benchmark the results-store scan paths behind `repro query`.

Builds one synthetic run of many rows, then times reading it back
through the two store paths — the line-by-line ``rows.jsonl`` parse and
the compacted columnar copy — plus a full ``run_query`` aggregate over
the mounted store.  Besides wall time each benchmark records its
``rows_scanned_per_sec`` as ``extra_info``, the scan-throughput number
the performance trajectory (`scripts/bench_record.py`, ``BENCH_<n>.json``)
tracks; the columnar/jsonl ratio is the speedup the compaction layer
buys.
"""

import json
import os

import pytest

from repro.results.columnar import (compact_run, read_jsonl_records,
                                    read_records)
from repro.results.query import run_query

ROWS = 20_000


@pytest.fixture(scope="module")
def synthetic_root(tmp_path_factory):
    """A results root holding one compacted run of ``ROWS`` rows."""
    root = tmp_path_factory.mktemp("bench-query")
    run_dir = root / "SYNTH" / "0123456789ab"
    run_dir.mkdir(parents=True)
    with open(run_dir / "rows.jsonl", "w") as handle:
        for i in range(ROWS):
            record = {"index": i, "key": ["SYNTH", i % 64, i],
                      "row": {"n": 12 + (i % 5), "trial": i,
                              "undecided": (i * 2654435761) % 97,
                              "rate": (i % 1000) / 1000.0,
                              "decided": i % 3 == 0}}
            handle.write(json.dumps(record, allow_nan=False) + "\n")
    manifest = {"experiment": "SYNTH", "params": {"seed": 0}, "seed": 0,
                "workers": 0, "backend": "trial", "completed": True,
                "wall_time_seconds": 1.0, "row_count": ROWS,
                "run_health": None}
    with open(run_dir / "manifest.json", "w") as handle:
        json.dump(manifest, handle, allow_nan=False)
    info = compact_run(str(run_dir))
    assert info is not None and info.rows == ROWS
    return str(root), str(run_dir)


@pytest.mark.benchmark(group="store-scan")
def test_bench_scan_jsonl(benchmark, synthetic_root):
    """The baseline: the tolerant line-by-line rows.jsonl parse."""
    _, run_dir = synthetic_root
    rows_path = os.path.join(run_dir, "rows.jsonl")

    records = benchmark.pedantic(read_jsonl_records, args=(rows_path,),
                                 iterations=1, rounds=5)

    assert len(records) == ROWS
    benchmark.extra_info["rows"] = ROWS
    benchmark.extra_info["rows_scanned_per_sec"] = \
        ROWS / benchmark.stats.stats.mean


@pytest.mark.benchmark(group="store-scan")
def test_bench_scan_columnar(benchmark, synthetic_root):
    """The compacted read path `repro query` scans through."""
    _, run_dir = synthetic_root

    def scan():
        records, source = read_records(run_dir)
        assert source != "jsonl"
        return records

    records = benchmark.pedantic(scan, iterations=1, rounds=5)

    assert len(records) == ROWS
    assert records == read_jsonl_records(
        os.path.join(run_dir, "rows.jsonl"))  # lossless, not just fast
    benchmark.extra_info["rows"] = ROWS
    benchmark.extra_info["rows_scanned_per_sec"] = \
        ROWS / benchmark.stats.stats.mean


@pytest.mark.benchmark(group="store-scan")
def test_bench_query_aggregate(benchmark, synthetic_root):
    """Mount + SQL aggregate over every stored row (`repro query`)."""
    root, _ = synthetic_root
    sql = ("SELECT n, COUNT(*) AS trials, AVG(undecided) AS mean_undecided "
           "FROM rows GROUP BY n ORDER BY n")

    result = benchmark.pedantic(run_query, args=(root, sql),
                                iterations=1, rounds=3)

    assert len(result.rows) == 5
    assert sum(row[1] for row in result.rows) == ROWS
    benchmark.extra_info["rows"] = ROWS
    benchmark.extra_info["engine"] = result.engine
    benchmark.extra_info["rows_scanned_per_sec"] = \
        ROWS / benchmark.stats.stats.mean
