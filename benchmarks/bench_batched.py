"""Benchmark the batched execution backend (`repro.batched`).

Runs an E2-shaped workload — reset-tolerant agreement against the seeded
split-vote adversary at n=13, stop-at-first-decision — through both
backends and records, besides the wall times, each backend's
``trials_per_sec`` as ``extra_info``.  The performance trajectory
(`scripts/bench_record.py`, ``BENCH_<n>.json``) gates on those rates, so
a change that silently de-vectorizes the hot path (or slows the
per-trial oracle) fails the bench gate even when the absolute wall time
still looks plausible.

The batched benchmark also records ``speedup_vs_trial`` against a
single timed pass of the per-trial path over the same specs, and asserts
the results are identical — the bit-identity contract, measured where it
is cheapest to check.
"""

import random
import time

import pytest

from repro.batched import numpy_ok
from repro.core.thresholds import max_tolerable_t
from repro.runner import TrialSpec, run_trials

TRIALS = 512
N = 13


def _e2_shaped_specs(count: int = TRIALS, n: int = N) -> list:
    """Seed-deterministic split-vote specs shaped like the E2 grid."""
    t = max_tolerable_t(n)
    rng = random.Random(42)
    specs = []
    for index in range(count):
        inputs = tuple(i % 2 for i in range(n)) if index % 2 else \
            tuple(1 for _ in range(n))
        specs.append(TrialSpec(
            protocol="reset-tolerant", adversary="split-vote",
            n=n, t=t, inputs=inputs, seed=rng.getrandbits(32),
            adversary_kwargs={"seed": rng.getrandbits(32)},
            stop_when="first", max_windows=60_000))
    return specs


@pytest.mark.benchmark(group="batched-backend")
def test_bench_batched_backend(benchmark):
    """The vectorized path, with the per-trial oracle as its baseline."""
    if not numpy_ok():
        pytest.skip("batched backend needs numpy >= 2.0")
    specs = _e2_shaped_specs()

    results = benchmark.pedantic(
        run_trials,
        kwargs={"specs": specs, "workers": 0, "backend": "batched"},
        iterations=1, rounds=3)

    started = time.perf_counter()
    oracle = run_trials(specs, workers=0)
    trial_elapsed = time.perf_counter() - started

    mean = benchmark.stats.stats.mean
    benchmark.extra_info["trials"] = len(specs)
    benchmark.extra_info["trials_per_sec"] = len(specs) / mean
    benchmark.extra_info["trial_baseline_seconds"] = trial_elapsed
    benchmark.extra_info["speedup_vs_trial"] = trial_elapsed / mean
    assert results == oracle  # the bit-identity contract


@pytest.mark.benchmark(group="batched-backend")
def test_bench_trial_backend(benchmark):
    """The per-trial oracle on the same workload (the 1x reference)."""
    specs = _e2_shaped_specs()

    benchmark.pedantic(
        run_trials, kwargs={"specs": specs, "workers": 0},
        iterations=1, rounds=1)

    mean = benchmark.stats.stats.mean
    benchmark.extra_info["trials"] = len(specs)
    benchmark.extra_info["trials_per_sec"] = len(specs) / mean
