"""Benchmark the supervised executor's overhead over the bare runner.

The resilient execution layer (retries, watchdog, quarantine — see
PERFORMANCE.md, "Fault tolerance & chaos testing") is on by default for
every experiment, so its fault-free cost must stay negligible.  This
benchmark runs the same E2 spec batch through the bare serial runner and
through :class:`repro.runner.SupervisedRunner` under its default policy,
records the relative overhead as ``extra_info.supervisor_overhead_pct``,
and holds it under 5%.
"""

import time

import pytest

from repro.experiments import get_experiment
from repro.runner import SupervisedRunner, run_trials

E2_PARAMS = {"ns": (12, 16), "trials": 2, "use_resets": True, "seed": 9}


def _e2_specs():
    experiment = get_experiment("E2")
    params = experiment.resolve_params(E2_PARAMS)
    return [spec for cell in experiment.cells(params=params)
            for spec in cell.specs]


def _bare_seconds(specs, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_trials(specs, workers=0)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="resilience-supervisor")
def test_bench_supervised_overhead_serial(benchmark):
    specs = _e2_specs()

    def supervised():
        runner = SupervisedRunner(workers=0)
        return list(runner.iter_results(specs))

    results = benchmark.pedantic(supervised, iterations=1, rounds=3)
    # The supervisor must not change values, only wall-clock time.
    assert results == run_trials(specs, workers=0)

    bare = _bare_seconds(specs)
    supervised_seconds = benchmark.stats.stats.min
    overhead_pct = 100.0 * (supervised_seconds - bare) / bare
    benchmark.extra_info["trials"] = len(specs)
    benchmark.extra_info["bare_runner_seconds"] = bare
    benchmark.extra_info["supervisor_overhead_pct"] = overhead_pct
    assert overhead_pct < 5.0, (
        f"supervisor overhead {overhead_pct:.2f}% exceeds the 5% budget "
        f"(bare {bare:.3f}s, supervised {supervised_seconds:.3f}s)")
