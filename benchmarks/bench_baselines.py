"""Benchmark E6 — baseline protocols at their classical resilience bounds.

Regenerates the correctness table for Ben-Or under crash failures
(``t < n/2``) and Bracha under Byzantine failures (``t < n/3``), via the
experiment registry.
"""

import pytest

from repro.experiments import get_experiment


@pytest.mark.benchmark(group="E6-baselines")
def test_bench_baseline_protocols(benchmark, print_rows):
    experiment = get_experiment("E6")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"ben_or_ns": (9, 15), "bracha_ns": (7, 10),
                           "trials": 2, "seed": 7}},
        iterations=1, rounds=1)
    print_rows("E6: Ben-Or (crash) and Bracha (Byzantine) baselines", rows)
    assert all(row["agreement_ok"] for row in rows)
    assert all(row["validity_ok"] for row in rows)
    assert all(row["terminated"] for row in rows)
