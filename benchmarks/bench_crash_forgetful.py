"""Benchmark E4 — Theorem 17: crash-model slowdown of forgetful algorithms.

Regenerates the "message-chain length until first decision versus n" series
for Ben-Or (a forgetful, fully communicative algorithm) against the
vote-splitting crash-model adversary, via the experiment registry.
"""

import pytest

from repro.experiments import get_experiment


@pytest.mark.benchmark(group="E4-crash-forgetful")
def test_bench_ben_or_message_chain_growth(benchmark, print_rows):
    experiment = get_experiment("E4")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"ns": (9, 13, 17, 21), "trials": 8,
                           "fault_fraction": 0.25, "seed": 5}},
        iterations=1, rounds=1)
    print_rows("E4: Ben-Or message-chain length under the crash-model "
               "adversary", rows)
    data = [row for row in rows if row["experiment"] == "E4"]
    fit = [row for row in rows if row["experiment"] == "E4-fit"]
    assert all(row["forgetful"] and row["fully_communicative"]
               for row in data)
    assert data[-1]["mean_message_chain"] > data[0]["mean_message_chain"]
    assert fit and fit[0]["fit_growth_rate_per_processor"] > 0
