"""Benchmark the guided adversary-search subsystem (`repro.search`).

Runs a small fixed-budget hill-climb campaign on the E1 quick cell and
records, besides the wall time, the campaign's candidate-evaluations per
second as ``extra_info`` — the search throughput number the performance
trajectory (`scripts/bench_record.py`, ``BENCH_<n>.json``) tracks.
"""

import pytest

from repro.search import resolve_search_params, run_search_campaign


@pytest.mark.benchmark(group="search-campaign")
def test_bench_search_campaign(benchmark):
    params = resolve_search_params(
        protocol="reset-tolerant", strategy="hill-climb",
        objective="undecided-rounds", generations=6, population=6,
        windows=120, seed=0, verify=False)

    report = benchmark.pedantic(
        run_search_campaign, kwargs={"params": params, "workers": 0},
        iterations=1, rounds=3)

    evaluations = params["generations"] * params["population"]
    benchmark.extra_info["candidate_evaluations"] = evaluations
    benchmark.extra_info["candidate_evals_per_sec"] = \
        evaluations / benchmark.stats.stats.mean
    assert len(report.rows) == evaluations


@pytest.mark.benchmark(group="search-campaign")
def test_bench_search_campaign_verified(benchmark):
    """The same campaign with per-candidate invariant checking on."""
    params = resolve_search_params(
        protocol="reset-tolerant", strategy="hill-climb",
        objective="undecided-rounds", generations=6, population=6,
        windows=120, seed=0, verify=True)

    report = benchmark.pedantic(
        run_search_campaign, kwargs={"params": params, "workers": 0},
        iterations=1, rounds=3)

    evaluations = params["generations"] * params["population"]
    benchmark.extra_info["candidate_evaluations"] = evaluations
    benchmark.extra_info["candidate_evals_per_sec"] = \
        evaluations / benchmark.stats.stats.mean
    assert all(row["ok"] for row in report.rows)
