"""Benchmark E8 — Theorem 5 constants and numerical Talagrand verification.

Regenerates the predicted lower-bound curves ``E = C * exp(alpha * n)`` for
several fault fractions (including the adversary's success probability,
which Theorem 5 shows is at least 1/2), plus exact verifications of
Lemma 9 on concrete product spaces.  Runs via the experiment registry.
"""

import pytest

from repro.experiments import get_experiment


@pytest.mark.benchmark(group="E8-constants")
def test_bench_lower_bound_constants(benchmark, print_rows):
    experiment = get_experiment("E8")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"cs": (0.05, 0.1, 1.0 / 6.0),
                           "ns": (50, 100, 200, 400), "seed": 9}},
        iterations=1, rounds=1)
    print_rows("E8: Theorem 5 constants and Talagrand spot checks", rows)
    curve_rows = [row for row in rows if row["experiment"] == "E8"]
    talagrand_rows = [row for row in rows
                      if row["experiment"] == "E8-talagrand"]
    assert all(row["success_probability"] >= 0.5 for row in curve_rows)
    assert all(row["inequality_holds"] for row in talagrand_rows)
