"""Benchmark E3 — the Theorem 5 lower-bound machinery at small n.

Regenerates the numerical checks of the proof's ingredients: Hamming
separation of the base decision sets (Lemma 11), the Talagrand thresholds
(Lemma 13), the hybrid-window interpolation (Lemma 14) and the input
interpolation from the proof of Theorem 5, via the experiment registry.
"""

import pytest

from repro.experiments import get_experiment


@pytest.mark.benchmark(group="E3-lower-bound")
def test_bench_lower_bound_machinery(benchmark, print_rows):
    experiment = get_experiment("E3")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"ns": (8, 12), "samples": 5,
                           "separation_trials": 8, "seed": 4}},
        iterations=1, rounds=1)
    print_rows("E3: lower-bound machinery checks", rows)
    assert all(row["separation_holds"] for row in rows)
    assert all(row["decision_set_min_distance"] > row["t"] for row in rows)
    assert all(0.0 <= row["hybrid_best_worst_probability"] <= 1.0
               for row in rows)
