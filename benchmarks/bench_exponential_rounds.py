"""Benchmark E2 — exponential running time against the split-vote adversary.

Regenerates the "windows until first decision versus n" series for split
inputs under the strongly adaptive (vote-splitting + resetting) adversary,
together with the analytic prediction and the exponential fit, via the
experiment registry.
"""

import pytest

from repro.experiments import get_experiment


@pytest.mark.benchmark(group="E2-exponential-rounds")
def test_bench_exponential_windows_vs_n(benchmark, print_rows):
    experiment = get_experiment("E2")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"ns": (12, 16, 20, 24), "trials": 4,
                           "use_resets": True, "seed": 2}},
        iterations=1, rounds=1)
    print_rows("E2: windows to first decision (split inputs, strongly "
               "adaptive adversary)", rows)
    data = [row for row in rows if row["experiment"] == "E2"]
    fit = [row for row in rows if row["experiment"] == "E2-fit"]
    # Split inputs are slower than unanimous ones at every size, and the
    # fitted growth rate across n is positive (exponential shape).
    assert all(row["mean_windows"] >= row["unanimous_mean_windows"]
               for row in data)
    assert fit and fit[0]["fit_growth_rate_per_processor"] > 0


@pytest.mark.benchmark(group="E2-exponential-rounds")
def test_bench_exponential_windows_without_resets(benchmark, print_rows):
    """Ablation: scheduling power alone (no resets) already forces the blowup."""
    experiment = get_experiment("E2")
    rows = benchmark.pedantic(
        experiment.run,
        kwargs={"params": {"ns": (12, 16, 20), "trials": 3,
                           "use_resets": False, "seed": 3}},
        iterations=1, rounds=1)
    print_rows("E2 (ablation): split-vote adversary without resets", rows)
    data = [row for row in rows if row["experiment"] == "E2"]
    assert data[-1]["mean_windows"] > data[0]["unanimous_mean_windows"]
