"""Benchmark the telemetry recorder's overhead on the execution path.

Runs an E2-quick-shaped workload (reset-tolerant split-vote trials
through ``repro.runner``) twice over the same specs — bare, and with a
:class:`~repro.telemetry.Telemetry` recorder writing its full
``telemetry.jsonl`` event log — and records ``telemetry_overhead_pct``
as ``extra_info``.  The overhead budget documented in PERFORMANCE.md is
2%; the trajectory (`scripts/bench_record.py`, ``BENCH_<n>.json``)
carries the measured number so a change that makes observation expensive
is visible even while the absolute wall time still looks plausible.

The bit-identity half of the observer-effect contract is asserted here
too, where it is cheapest: both passes must return identical results.
"""

import random
import time

import pytest

from repro.core.thresholds import max_tolerable_t
from repro.runner import TrialSpec, run_trials
from repro.telemetry import Telemetry

TRIALS = 256
N = 13


def _e2_shaped_specs(count: int = TRIALS, n: int = N) -> list:
    """Seed-deterministic split-vote specs shaped like the E2 grid."""
    t = max_tolerable_t(n)
    rng = random.Random(42)
    specs = []
    for index in range(count):
        inputs = tuple(i % 2 for i in range(n)) if index % 2 else \
            tuple(1 for _ in range(n))
        specs.append(TrialSpec(
            protocol="reset-tolerant", adversary="split-vote",
            n=n, t=t, inputs=inputs, seed=rng.getrandbits(32),
            adversary_kwargs={"seed": rng.getrandbits(32)},
            stop_when="first", max_windows=60_000))
    return specs


@pytest.mark.benchmark(group="telemetry-overhead")
def test_bench_telemetry_overhead(benchmark, tmp_path):
    """Instrumented serial execution vs. the same workload bare."""
    specs = _e2_shaped_specs()

    started = time.perf_counter()
    bare = run_trials(specs, workers=0)
    bare_elapsed = time.perf_counter() - started

    def observed_pass():
        telemetry = Telemetry(sink=str(tmp_path / "telemetry.jsonl"))
        with telemetry.span("campaign", label="bench"):
            results = run_trials(specs, workers=0, telemetry=telemetry)
        telemetry.close()
        return results, telemetry

    results, telemetry = benchmark.pedantic(observed_pass,
                                            iterations=1, rounds=3)
    assert results == bare  # the observer-effect contract, measured
    assert telemetry.counters["trials_completed"] == len(specs)

    mean = benchmark.stats.stats.mean
    benchmark.extra_info["trials"] = len(specs)
    benchmark.extra_info["trials_per_sec"] = len(specs) / mean
    benchmark.extra_info["bare_baseline_seconds"] = bare_elapsed
    benchmark.extra_info["telemetry_overhead_pct"] = \
        (mean - bare_elapsed) / bare_elapsed * 100.0
